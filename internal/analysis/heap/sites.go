// Allocation-, boxing- and blocking-site enumeration over one function
// body, with the local escape classification that decides whether a
// refinable candidate (address-taken literal, new, constant-length
// make) actually reaches the heap. See the package comment for the
// verdict lattice.

package heap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/flow"
)

// scanner accumulates the sites of one function body.
type scanner struct {
	store *Store
	pkg   *flow.Pkg
	sites []Site

	body    *ast.BlockStmt
	results []types.Type // declared result types, for return boxing
	uses    map[types.Object][]useInfo
	// consumed marks composite literals already judged as part of an
	// enclosing &lit / outer literal candidate.
	consumed map[*ast.CompositeLit]bool
}

// useInfo records one identifier use with enough ancestry to classify
// it (parent and grandparent nodes, and whether it sits inside a
// nested function literal relative to the scanned body).
type useInfo struct {
	id            *ast.Ident
	parent, grand ast.Node
	inFuncLit     bool
}

// scan drives the enumeration for one declaration.
func (sc *scanner) scan(decl *ast.FuncDecl) {
	sc.body = decl.Body
	sc.consumed = map[*ast.CompositeLit]bool{}
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			t := sc.pkg.Info.TypeOf(f.Type)
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				sc.results = append(sc.results, t)
			}
		}
	}
	sc.collectUses()
	sc.walk(sc.body, nil)
}

// pos resolves a node position.
func (sc *scanner) pos(n ast.Node) token.Position { return sc.pkg.Fset.Position(n.Pos()) }

// walk visits n with the ancestor stack (outermost first), classifying
// sites as it goes. Function-literal bodies and panic arguments are not
// descended into (closure creation and the panicking statement are the
// sites; their interiors run off this function's steady-state path).
func (sc *scanner) walk(n ast.Node, stack []ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := sc.visit(m, stack)
		if !descend {
			return false
		}
		stack = append(stack, m)
		return true
	})
}

// visit classifies one node; it returns false to prune the subtree.
func (sc *scanner) visit(n ast.Node, stack []ast.Node) bool {
	info := sc.pkg.Info
	switch n := n.(type) {
	case *ast.FuncLit:
		if sc.capturesOuter(n) {
			sc.add(Site{Pos: sc.pos(n), Kind: KindAlloc, What: "function literal captures variables (closure allocation)"})
		}
		return false

	case *ast.GoStmt:
		sc.add(Site{Pos: sc.pos(n), Kind: KindAlloc, What: "go statement launches a goroutine"})
		return false

	case *ast.SendStmt:
		// A send that is a select comm op is guarded by the select
		// (flagged there only when it has no default).
		if !inSelectComm(stack, n) {
			sc.add(Site{Pos: sc.pos(n), Kind: KindBlock, What: "a channel send"})
		}
		return true

	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			if !inSelectComm(stack, n) {
				sc.add(Site{Pos: sc.pos(n), Kind: KindBlock, What: "a channel receive"})
			}
			return true
		}
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				sc.consumed[lit] = true
				sc.classifyCandidate(n, stack, "address-taken composite literal")
				// Still descend: element expressions may allocate.
			}
		}
		return true

	case *ast.SelectStmt:
		hasDefault := false
		for _, cs := range n.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			sc.add(Site{Pos: sc.pos(n), Kind: KindBlock, What: "a select with no default"})
		}
		return true

	case *ast.RangeStmt:
		if t := info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				sc.add(Site{Pos: sc.pos(n), Kind: KindBlock, What: "ranging over a channel"})
			}
		}
		return true

	case *ast.CompositeLit:
		if sc.consumed[n] {
			return true
		}
		if t := info.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				sc.classifyCandidate(n, stack, "slice literal")
			case *types.Map:
				sc.classifyCandidate(n, stack, "map literal")
			}
		}
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD && sc.isNonConstString(n) {
			sc.add(Site{Pos: sc.pos(n), Kind: KindAlloc, What: "string concatenation"})
		}
		return true

	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && sc.isNonConstString(n.Lhs[0]) {
			sc.add(Site{Pos: sc.pos(n), Kind: KindAlloc, What: "string concatenation (+=)"})
		}
		if n.Tok == token.ASSIGN {
			sc.boxingInAssign(n)
		}
		return true

	case *ast.ReturnStmt:
		for i, res := range n.Results {
			if i < len(sc.results) && isInterface(sc.results[i]) {
				sc.boxingAt(res, sc.results[i], "returned as")
			}
		}
		return true

	case *ast.SelectorExpr:
		sc.methodValue(n, stack)
		return true

	case *ast.CallExpr:
		return sc.visitCall(n, stack)
	}
	return true
}

// visitCall handles every call shape: builtins, conversions, known
// stdlib allocators/blockers, module callees (summary merge) and
// interface boxing at the arguments.
func (sc *scanner) visitCall(call *ast.CallExpr, stack []ast.Node) bool {
	info := sc.pkg.Info

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				// A panicking run is off the steady-state path; its
				// argument (fmt.Sprintf and friends) is cold by fiat.
				return false
			case "new":
				sc.classifyCandidate(call, stack, "new("+sc.typeArgName(call)+")")
			case "make":
				sc.classifyMake(call, stack)
			case "append":
				sc.add(Site{Pos: sc.pos(call), Kind: KindAlloc, What: "append may grow its backing array"})
			case "print", "println":
				sc.add(Site{Pos: sc.pos(call), Kind: KindBlock, What: "built-in print (stderr I/O)"})
			}
			return true
		}
	}

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		arg := call.Args[0]
		if isInterface(dst) {
			sc.boxingAt(arg, dst, "converted to")
			return true
		}
		if convAllocates(dst, info.TypeOf(arg)) {
			sc.add(Site{Pos: sc.pos(call), Kind: KindAlloc, What: "string/byte-slice conversion copies"})
		}
		return true
	}

	callee := flow.CalleeOf(info, call)
	if callee != nil && callee.Pkg() != nil {
		path := callee.Pkg().Path()
		name := callee.Name()
		switch {
		case sc.store.Resolve != nil && sc.store.Resolve(path) != nil:
			sc.mergeCall(call, callee)
		case stdAllocators[path][name]:
			sc.add(Site{Pos: sc.pos(call), Kind: KindAlloc, What: path + "." + name + " allocates its result"})
		default:
			if what := blockingCall(callee); what != "" {
				sc.add(Site{Pos: sc.pos(call), Kind: KindBlock, What: what})
			}
		}
	}

	// Interface boxing at the arguments (fmt-style varargs included).
	if sig := callSignature(info, call); sig != nil {
		sc.boxingInArgs(call, sig)
	}
	return true
}

// classifyMake decides a make call: maps and channels always allocate,
// slices with a non-constant length allocate, constant-length slices
// are refinable candidates.
func (sc *scanner) classifyMake(call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	t := sc.pkg.Info.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		sc.add(Site{Pos: sc.pos(call), Kind: KindAlloc, What: "make(map) allocates"})
		return
	case *types.Chan:
		sc.add(Site{Pos: sc.pos(call), Kind: KindAlloc, What: "make(chan) allocates"})
		return
	}
	for _, sz := range call.Args[1:] {
		if tv, ok := sc.pkg.Info.Types[sz]; !ok || tv.Value == nil {
			sc.add(Site{Pos: sc.pos(call), Kind: KindAlloc, What: "make with non-constant length allocates"})
			return
		}
	}
	sc.classifyCandidate(call, stack, "constant-length make")
}

// classifyCandidate records a refinable candidate as a site when its
// value escapes the function.
func (sc *scanner) classifyCandidate(e ast.Expr, stack []ast.Node, what string) {
	esc, how, defer2outer := sc.escapes(e, stack)
	if defer2outer || !esc {
		return
	}
	sc.add(Site{Pos: sc.pos(e), Kind: KindAlloc, What: what + " escapes to the heap (" + how + ")"})
}

// escapes walks the ancestor chain of a candidate to its first decisive
// consumer. deferToOuter reports that an enclosing literal candidate
// will carry the verdict instead.
func (sc *scanner) escapes(e ast.Expr, stack []ast.Node) (esc bool, how string, deferToOuter bool) {
	child := ast.Node(e)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr:
			child = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				child = p
				continue
			}
			return false, "", false
		case *ast.CompositeLit:
			// Nested inside another literal: a slice/map/&-lit parent is
			// its own candidate and decides for both; a plain struct
			// value literal just carries the pointer further up.
			if sc.litIsCandidate(p, stack[:i]) {
				return false, "", true
			}
			child = p
			continue
		case *ast.AssignStmt:
			return sc.escapesViaAssign(p, child)
		case *ast.ValueSpec:
			for j, v := range p.Values {
				if v == child && j < len(p.Names) {
					return sc.trackLocal(p.Names[j])
				}
			}
			return true, "unmatched declaration", false
		case *ast.ReturnStmt:
			return true, "returned", false
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if _, isBuiltin := sc.pkg.Info.Uses[fid].(*types.Builtin); isBuiltin {
					switch fid.Name {
					case "len", "cap", "delete", "clear", "copy":
						return false, "", false
					}
				}
			}
			return true, "passed to a call", false
		case *ast.SendStmt:
			return true, "sent on a channel", false
		case *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt,
			*ast.CaseClause, *ast.BinaryExpr, *ast.IncDecStmt:
			return false, "", false
		case *ast.RangeStmt:
			if p.X == child {
				return false, "", false
			}
			return true, "used in a range position", false
		case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
			// Read-and-discard through the fresh value; keep walking.
			child = p.(ast.Expr)
			continue
		default:
			return true, "used in an unanalyzed position", false
		}
	}
	return true, "used in an unanalyzed position", false
}

// litIsCandidate reports whether a composite literal is itself a
// refinable candidate (slice/map underlying, or wrapped in &).
func (sc *scanner) litIsCandidate(lit *ast.CompositeLit, outer []ast.Node) bool {
	if t := sc.pkg.Info.TypeOf(lit); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
	}
	if len(outer) > 0 {
		if u, ok := outer[len(outer)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return true
		}
	}
	return false
}

// escapesViaAssign classifies a candidate consumed by an assignment.
func (sc *scanner) escapesViaAssign(as *ast.AssignStmt, child ast.Node) (bool, string, bool) {
	idx := -1
	for i, r := range as.Rhs {
		if r == child {
			idx = i
		}
	}
	if idx < 0 || len(as.Lhs) != len(as.Rhs) {
		return true, "assigned through a tuple", false
	}
	switch lhs := ast.Unparen(as.Lhs[idx]).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false, "", false
		}
		obj := sc.pkg.Info.ObjectOf(lhs)
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true, "stored to a package-level variable", false
		}
		return sc.trackLocal(lhs)
	default:
		// Selector, index, star: stored into another object.
		return true, "stored into another object", false
	}
}

// trackLocal decides escape for a candidate bound to a plain local by
// scanning every later use of the variable.
func (sc *scanner) trackLocal(id *ast.Ident) (bool, string, bool) {
	obj := sc.pkg.Info.ObjectOf(id)
	if obj == nil {
		return true, "untyped binding", false
	}
	for _, u := range sc.uses[obj] {
		if u.id == id {
			continue // the binding itself
		}
		if u.inFuncLit {
			return true, "captured by a closure", false
		}
		if esc, how := localUseEscapes(sc.pkg.Info, u); esc {
			return true, how, false
		}
	}
	return false, "", false
}

// localUseEscapes classifies one use of a tracked local.
func localUseEscapes(info *types.Info, u useInfo) (bool, string) {
	switch p := u.parent.(type) {
	case *ast.SelectorExpr:
		// x.f field access is local; x.m() hands the receiver away.
		if call, ok := u.grand.(*ast.CallExpr); ok && call.Fun == p {
			if fn, ok := info.Uses[p.Sel].(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
				return true, "receiver of a method call"
			}
		}
		return false, ""
	case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.BinaryExpr,
		*ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause,
		*ast.IncDecStmt, *ast.ExprStmt, *ast.RangeStmt, *ast.BlockStmt:
		return false, ""
	case *ast.CallExpr:
		if fid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
				switch fid.Name {
				case "len", "cap", "delete", "clear", "copy":
					return false, ""
				case "append":
					// x = append(x, ...) keeps x local; appending x into
					// another slice aliases it.
					if as, ok := u.grand.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(p.Args) > 0 && p.Args[0] == u.id {
						if lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && info.ObjectOf(lhs) == info.ObjectOf(u.id) {
							return false, ""
						}
					}
					return true, "aliased by append"
				}
			}
		}
		return true, "passed to a call"
	case *ast.ReturnStmt:
		return true, "returned"
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return true, "address taken"
		}
		return false, ""
	case *ast.SendStmt:
		return true, "sent on a channel"
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == u.id {
				return false, "" // reassignment kills, does not leak
			}
		}
		// `_ = x` keep-alive discards the value.
		allBlank := true
		for _, l := range p.Lhs {
			if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
				allBlank = false
			}
		}
		if allBlank {
			return false, ""
		}
		return true, "aliased or stored elsewhere"
	case *ast.KeyValueExpr, *ast.CompositeLit:
		return true, "stored into a composite literal"
	default:
		return true, "used in an unanalyzed position"
	}
}

// inSelectComm reports whether n sits inside the comm operation of its
// nearest enclosing select case: those channel ops are guarded by the
// select itself.
func inSelectComm(stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if cc, ok := stack[i].(*ast.CommClause); ok {
			return cc.Comm != nil && cc.Comm.Pos() <= n.Pos() && n.End() <= cc.Comm.End()
		}
	}
	return false
}

// collectUses indexes every identifier use in the body by object, with
// parent/grandparent ancestry and closure nesting.
func (sc *scanner) collectUses() {
	sc.uses = map[types.Object][]useInfo{}
	var stack []ast.Node
	funcLitDepth := 0
	ast.Inspect(sc.body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok {
				funcLitDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := sc.pkg.Info.ObjectOf(id)
			if obj != nil {
				var parent, grand ast.Node
				if len(stack) > 0 {
					parent = stack[len(stack)-1]
				}
				if len(stack) > 1 {
					grand = stack[len(stack)-2]
				}
				if pe, ok := parent.(*ast.ParenExpr); ok && pe != nil {
					parent = grand
					if len(stack) > 2 {
						grand = stack[len(stack)-3]
					}
				}
				sc.uses[obj] = append(sc.uses[obj], useInfo{id: id, parent: parent, grand: grand, inFuncLit: funcLitDepth > 0})
			}
		}
		if _, ok := n.(*ast.FuncLit); ok {
			funcLitDepth++
		}
		stack = append(stack, n)
		return true
	})
}

// capturesOuter reports whether a function literal references variables
// declared outside it.
func (sc *scanner) capturesOuter(fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := sc.pkg.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true // globals and non-vars are not captures
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = true
		}
		return true
	})
	return captured
}

// methodValue flags x.M used as a value (not called): binding the
// receiver allocates a closure.
func (sc *scanner) methodValue(sel *ast.SelectorExpr, stack []ast.Node) {
	fn, ok := sc.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() == nil {
		return
	}
	if s, ok := sc.pkg.Info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if p, ok := stack[i].(*ast.ParenExpr); ok {
			_ = p
			continue
		}
		if call, ok := stack[i].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return // ordinary method call
		}
		break
	}
	sc.add(Site{Pos: sc.pos(sel), Kind: KindBox, What: "method value binds its receiver (closure allocation)"})
}

// boxingInAssign flags concrete values assigned into interface-typed
// destinations.
func (sc *scanner) boxingInAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if t := sc.pkg.Info.TypeOf(lhs); t != nil && isInterface(t) {
			sc.boxingAt(as.Rhs[i], t, "assigned to")
		}
	}
}

// boxingInArgs flags concrete values passed where the callee expects an
// interface, including variadic ...interface tails.
func (sc *scanner) boxingInArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return // s... passes the slice through, no boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && isInterface(pt) {
			sc.boxingAt(arg, pt, "passed as")
		}
	}
}

// boxingAt records a boxing site when storing e into an interface of
// type dst allocates: concrete, non-pointer-shaped, non-constant values
// only (pointers share their word; constants get static boxes).
func (sc *scanner) boxingAt(e ast.Expr, dst types.Type, how string) {
	tv, ok := sc.pkg.Info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return
	}
	t := tv.Type
	if isInterface(t) || pointerShaped(t) || isUntypedNil(t) {
		return
	}
	sc.add(Site{
		Pos:  sc.pos(e),
		Kind: KindBox,
		What: "boxing " + shortType(t) + " " + how + " " + shortType(dst),
	})
}

// isNonConstString reports whether e has string type and is not a
// compile-time constant.
func (sc *scanner) isNonConstString(e ast.Expr) bool {
	tv, ok := sc.pkg.Info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// typeArgName renders new(T)'s argument compactly.
func (sc *scanner) typeArgName(call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return "?"
	}
	if t := sc.pkg.Info.TypeOf(call.Args[0]); t != nil {
		return shortType(t)
	}
	return "?"
}

// callSignature resolves the signature of a non-conversion call.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// convAllocates reports whether a conversion between strings and
// byte/rune slices copies its operand.
func convAllocates(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports types whose interface representation shares the
// value word without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// shortType renders a type with bare package names.
func shortType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// stdAllocators are stdlib functions that allocate their result even
// when every argument is constant; the fmt print family is covered by
// variadic boxing plus blockingCall instead.
var stdAllocators = map[string]map[string]bool{
	"errors": {"New": true, "Join": true},
	"fmt": {"Sprintf": true, "Sprint": true, "Sprintln": true,
		"Errorf": true, "Appendf": true},
	"strings": {"Join": true, "Repeat": true, "Replace": true,
		"ReplaceAll": true, "Split": true, "SplitN": true, "Fields": true,
		"ToUpper": true, "ToLower": true, "Clone": true, "Map": true},
	"bytes": {"Join": true, "Repeat": true, "Split": true, "Fields": true,
		"ToUpper": true, "ToLower": true, "Clone": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "QuoteRune": true},
	"time": {"NewTimer": true, "NewTicker": true, "After": true, "Tick": true},
}

// blockingIOPkgs are packages whose calls are treated as syscall-backed
// I/O wholesale: none of them belongs on a per-cycle path.
var blockingIOPkgs = map[string]bool{
	"os": true, "io": true, "bufio": true, "net": true,
	"net/http": true, "log": true, "syscall": true, "io/fs": true,
}

// blockingCall classifies a stdlib callee as a blocking operation,
// returning the description or "".
func blockingCall(fn *types.Func) string {
	path := fn.Pkg().Path()
	name := fn.Name()
	if blockingIOPkgs[path] {
		return path + "." + name + " (syscall-backed I/O)"
	}
	switch path {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			return "fmt." + name + " (stream I/O)"
		}
	case "sync":
		recv := ""
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = shortType(sig.Recv().Type()) + "."
		}
		switch name {
		case "Lock", "RLock":
			return "lock acquisition (sync." + strings.TrimPrefix(recv, "*sync.") + name + ")"
		case "Wait", "Do":
			return "sync." + strings.TrimPrefix(recv, "*sync.") + name
		}
	}
	return ""
}
