// Package loading: parse one directory of non-test Go files and type-check
// it. Module-internal imports are resolved recursively from source; stdlib
// imports go through the go/importer source importer, so the loader needs
// neither pre-compiled export data nor anything outside the standard
// library.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/flow"
	"repro/internal/analysis/heap"
	"repro/internal/analysis/shape"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (or logical path for fixtures)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loader *Loader // back-reference for cross-package summaries
}

// Loader loads and caches packages of one module.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute directory containing go.mod
	ModuleName string // module path, e.g. "repro"

	std        types.ImporterFrom
	pkgs       map[string]*Package // import path -> loaded package
	errs       map[string]error    // import path -> load failure (memoized)
	allows     allowSet            // allow comments across every loaded package
	store      *flow.Store         // lazily built cross-package summary store
	heapStore  *heap.Store         // lazily built heap/escape summary store
	shapeStore *shape.Store        // lazily built struct-shape store
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModuleName: module,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		errs:       map[string]error{},
		allows:     allowSet{},
	}
}

// Summaries returns the loader's cross-package function-summary store.
// Summaries are computed bottom-up on demand: because imports load
// before importers, every callee in a dependency package is resolvable
// by the time its caller is analyzed. Taint is suppressed at sources
// whose line carries an allow for detflow (or determinism, the
// syntactic sibling).
func (l *Loader) Summaries() *flow.Store {
	if l.store == nil {
		l.store = flow.NewStore(
			func(path string) *flow.Pkg {
				p, ok := l.pkgs[path]
				if !ok {
					return nil
				}
				return &flow.Pkg{Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
			},
			func(pos token.Position) bool {
				return l.allows.at(pos.Filename, pos.Line, "detflow") ||
					l.allows.at(pos.Filename, pos.Line, "determinism")
			},
		)
	}
	return l.store
}

// Heap returns the loader's heap/escape summary store (see
// internal/analysis/heap). It shares the flow store's resolution over
// loaded packages; a site is suppressed at its source line by an allow
// for the check its kind backs (hotalloc/hotbox/hotlock).
func (l *Loader) Heap() *heap.Store {
	if l.heapStore == nil {
		l.heapStore = heap.NewStore(
			l.Summaries(),
			func(path string) *flow.Pkg {
				p, ok := l.pkgs[path]
				if !ok {
					return nil
				}
				return &flow.Pkg{Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
			},
			func(pos token.Position, check string) bool {
				return l.allows.at(pos.Filename, pos.Line, check)
			},
		)
	}
	return l.heapStore
}

// Shape returns the loader's struct-shape store (see
// internal/analysis/shape). It shares the flow store's resolution over
// loaded packages, so field objects are identical across passes.
func (l *Loader) Shape() *shape.Store {
	if l.shapeStore == nil {
		l.shapeStore = shape.NewStore(func(path string) *flow.Pkg {
			p, ok := l.pkgs[path]
			if !ok {
				return nil
			}
			return &flow.Pkg{Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
		})
	}
	return l.shapeStore
}

// Import implements types.Importer: module-internal packages load from
// source under ModuleRoot, everything else is delegated to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModuleName || strings.HasPrefix(path, l.ModuleName+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModuleName), "/")
		pkg, err := l.Load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleRoot, 0)
}

// Load parses and type-checks the non-test Go files of dir under the given
// import path. Results (and failures) are memoized by path.
func (l *Loader) Load(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.load(dir, path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) load(dir, path string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.allows.merge(collectAllows(l.Fset, files))
	return &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}, nil
}

// goFileNames lists dir's buildable non-test .go files, sorted for
// deterministic loading.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// PackageDirs walks root and returns every directory holding at least one
// non-test Go file, skipping testdata, hidden and underscore-prefixed
// directories — the "./..." expansion of the driver and the fixture
// harness.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
