package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseAllows(t *testing.T, src string) allowSet {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return collectAllows(fset, []*ast.File{f})
}

func TestAllowMultipleDirectivesOneComment(t *testing.T) {
	set := parseAllows(t, `package p

func f() {
	_ = 1 //mcrlint:allow timing first why //mcrlint:allow determinism second why
}
`)
	for _, check := range []string{"timing", "determinism"} {
		if !set.at("a.go", 4, check) {
			t.Errorf("directive for %q on line 4 not collected: %v", check, set)
		}
	}
	if set.at("a.go", 4, "panicpolicy") {
		t.Error("unnamed check suppressed")
	}
}

func TestAllowMultipleDirectivesHotChecks(t *testing.T) {
	// One comment sanctioning the same line for all three hot-path
	// checks — the shape a deliberate dispatch-seam exception uses.
	set := parseAllows(t, `package p

func f() {
	g() //mcrlint:allow hotalloc ring reuse //mcrlint:allow hotbox trace sink //mcrlint:allow hotlock drained channel
}
`)
	for _, check := range []string{"hotalloc", "hotbox", "hotlock"} {
		if !set.at("a.go", 4, check) {
			t.Errorf("directive for %q on line 4 not collected: %v", check, set)
		}
	}
	if set.at("a.go", 4, "detflow") {
		t.Error("unnamed check suppressed")
	}
}

func TestAllowWrongCheckDoesNotSuppress(t *testing.T) {
	set := parseAllows(t, `package p

func f() {
	_ = 1 //mcrlint:allow timing justified
}
`)
	d := Diagnostic{
		Check: "determinism",
		Pos:   token.Position{Filename: "a.go", Line: 4},
	}
	if set.allows(d) {
		t.Error("allow for timing suppressed a determinism diagnostic")
	}
	d.Check = "timing"
	if !set.allows(d) {
		t.Error("allow for timing did not suppress a timing diagnostic")
	}
}

func TestAllowPrecedingLineCoversMultiLineExpr(t *testing.T) {
	// The directive sits on the line above a multi-line expression; the
	// diagnostic anchors at the expression's first line and must be
	// suppressed, but the continuation lines must not inherit it.
	set := parseAllows(t, `package p

func f() int {
	//mcrlint:allow timing spread call
	return g(
		1,
		2)
}
`)
	if !set.at("a.go", 5, "timing") {
		t.Error("line directly below the directive not suppressed")
	}
	if set.at("a.go", 6, "timing") || set.at("a.go", 7, "timing") {
		t.Error("continuation lines wrongly suppressed")
	}
}

func TestAllowTrailingComma(t *testing.T) {
	set := parseAllows(t, `package p

var x = 1 //mcrlint:allow unitmix, legacy constant
`)
	if !set.at("a.go", 3, "unitmix") {
		t.Error("check name with trailing comma not recognized")
	}
}

func TestAllowBareDirectiveIgnored(t *testing.T) {
	// A directive with no check name suppresses nothing.
	set := parseAllows(t, `package p

var x = 1 //mcrlint:allow
`)
	if len(set) != 0 {
		t.Errorf("bare directive produced suppressions: %v", set)
	}
}

func TestAllowMerge(t *testing.T) {
	a := allowSet{allowKey{"a.go", 1, "timing"}: true}
	b := allowSet{allowKey{"b.go", 2, "unitmix"}: true}
	a.merge(b)
	if !a.at("a.go", 1, "timing") || !a.at("b.go", 2, "unitmix") {
		t.Errorf("merge lost entries: %v", a)
	}
}

func TestDedupe(t *testing.T) {
	d := func(file string, line int, check, msg string) Diagnostic {
		return Diagnostic{Check: check, Message: msg,
			Pos: token.Position{Filename: file, Line: line}}
	}
	ds := []Diagnostic{
		d("b.go", 2, "timing", "x"),
		d("a.go", 1, "timing", "x"),
		d("a.go", 1, "timing", "x"), // exact duplicate
		d("a.go", 1, "unitmix", "x"),
		d("a.go", 1, "timing", "y"),
	}
	out := Dedupe(ds)
	if len(out) != 4 {
		t.Fatalf("Dedupe kept %d, want 4: %v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			t.Fatalf("duplicate survived at %d: %v", i, out[i])
		}
		if diagnosticLess(out[i], out[i-1]) {
			t.Fatalf("output not sorted at %d: %v before %v", i, out[i-1], out[i])
		}
	}
}
