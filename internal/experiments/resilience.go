// Beyond-the-paper resilience study: seeded fault injection at the most
// aggressive MCR mode, sweeping the injected weak-cell fraction against
// two policies — detect-only (count ECC events, never intervene) and
// graceful degradation (quarantine failing gangs, step the governor
// ladder toward safer modes). Each cell is compared against the
// fault-free run of the same mode, so the table shows what reliability
// costs: ECC events absorbed, rows quarantined, mode downgrades taken
// and the execution-time price paid for them.

package experiments

import (
	"fmt"
	"io"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mcr"
	"repro/internal/runplan"
	"repro/internal/sim"
)

// DefaultWeakFractions is the injected weak-cell population sweep.
var DefaultWeakFractions = []float64{1e-4, 1e-3, 1e-2}

// ResilienceRow is one cell of the resilience study.
type ResilienceRow struct {
	Workload string
	Config   string
	// ECCEvents/QuarantinedRows/Downgrades summarize the policy's work;
	// FinalMode is the device mode at end of run (degradation may have
	// stepped it down from [4/4x/100%reg]).
	ECCEvents       int
	QuarantinedRows int
	Downgrades      int
	FinalMode       string
	// MTBFMs is the observed mean time between failures (0 when clean).
	MTBFMs float64
	// SlowdownPct is the execution-time cost versus the fault-free run
	// of the same mode (positive = slower).
	SlowdownPct float64
}

// resilienceCells builds the per-workload policy × weak-fraction grid.
func resilienceCells(seed int64, fractions []float64) []struct {
	label  string
	faults fault.Config
	policy sim.ResilienceConfig
} {
	type cell = struct {
		label  string
		faults fault.Config
		policy sim.ResilienceConfig
	}
	var cells []cell
	for _, wf := range fractions {
		fc := fault.Config{
			Seed:         seed,
			WeakFraction: wf,
			// Compressed retention tails so weak rows observably fail
			// within simulation-sized runs (see internal/fault).
			TailMinFrac: 0.0005,
			TailMaxFrac: 0.005,
		}
		cells = append(cells,
			cell{fmt.Sprintf("weak %.0e detect", wf), fc, sim.ResilienceConfig{}},
			cell{fmt.Sprintf("weak %.0e degrade", wf), fc, sim.ResilienceConfig{DowngradeAfter: 4, Quarantine: true}},
		)
	}
	return cells
}

// ResilienceStudy sweeps injected weak-cell fractions × resilience
// policies at mode [4/4x/100%reg]. A nil fractions selects
// DefaultWeakFractions. Under Options.KeepGoing, rows of failed cells
// are omitted and the joined per-cell errors are returned alongside the
// surviving rows.
func ResilienceStudy(o Options, workloads []string, fractions []float64) ([]ResilienceRow, error) {
	o = o.withDefaults()
	if fractions == nil {
		fractions = DefaultWeakFractions
	}
	mode, err := mcr.NewMode(4, 4, 1)
	if err != nil {
		return nil, err
	}
	cells := resilienceCells(o.Seed, fractions)
	plan := &runplan.Plan{Name: "resilience"}
	for _, wl := range workloads {
		base := baseConfig(o, false, []string{wl}, mode, dram.AllMechanisms(), 0, false)
		for _, c := range cells {
			cfg := base
			fc, pol := c.faults, c.policy
			cfg.Fault = &fc
			cfg.Resilience = &pol
			plan.AddPair(wl, c.label, cfg, base)
		}
	}
	results, execErr := o.execute(plan)
	var rows []ResilienceRow
	for _, r := range results {
		if r.Run == nil {
			continue // failed under KeepGoing; reported via execErr
		}
		row := ResilienceRow{
			Workload:    r.Workload,
			Config:      r.Config,
			SlowdownPct: -reduce(r.Base, r.Run).ExecTime,
		}
		if rs := r.Run.Resilience; rs != nil {
			row.ECCEvents = rs.ECCEvents
			row.QuarantinedRows = rs.QuarantinedRows
			row.Downgrades = rs.Downgrades
			row.FinalMode = rs.FinalMode
			row.MTBFMs = rs.MTBFMs
		}
		rows = append(rows, row)
	}
	if execErr != nil && rows == nil {
		return nil, execErr
	}
	return rows, execErr
}

// WriteResilience renders the study as an aligned text table.
func WriteResilience(w io.Writer, rows []ResilienceRow) error {
	if _, err := fmt.Fprintln(w, "resilience: seeded fault injection at mode [4/4x/100%reg]"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %-22s %6s %6s %7s %-22s %9s %10s\n",
		"workload", "config", "ECC", "quar", "downgr", "final mode", "MTBF ms", "slowdown%"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %-22s %6d %6d %7d %-22s %9.3f %10.2f\n",
			r.Workload, r.Config, r.ECCEvents, r.QuarantinedRows, r.Downgrades,
			r.FinalMode, r.MTBFMs, r.SlowdownPct); err != nil {
			return err
		}
	}
	return nil
}
