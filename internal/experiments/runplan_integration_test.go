// Regression tests for the run-plan execution layer as the experiments
// package uses it: parallel execution must be byte-identical to serial,
// and each unique baseline must be simulated exactly once per plan.

package experiments

import (
	"bytes"
	"testing"

	"repro/internal/runplan"
)

// renderAll formats a sweep under every metric, concatenated.
func renderAll(t *testing.T, s *Sweep) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, metric := range []string{"exec", "readlat", "edp"} {
		if err := WriteSweep(&buf, s, metric); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSweepDeterministicAcrossJobs: the same seed must produce
// byte-identical formatted output with -jobs 1 and -jobs N, and across
// repeated executions.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	sweep := func(jobs int) []byte {
		o := fastOpts()
		o.Jobs = jobs
		s, err := Fig11(o, subset)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, s)
	}
	serial := sweep(1)
	if again := sweep(1); !bytes.Equal(serial, again) {
		t.Fatal("serial execution not deterministic across repeats at the same seed")
	}
	for _, jobs := range []int{2, 8} {
		if pooled := sweep(jobs); !bytes.Equal(serial, pooled) {
			t.Fatalf("jobs=%d output differs from serial:\n--- serial ---\n%s--- pooled ---\n%s", jobs, serial, pooled)
		}
	}
}

// TestBaselineSimulatedOncePerPlan: a Quick-sized multi-config sweep
// (Fig 13's 15 modes per workload) must issue each unique baseline config
// exactly once through the pooled executor, while producing results
// identical to the serial path.
func TestBaselineSimulatedOncePerPlan(t *testing.T) {
	run := func(jobs int) (*Sweep, []runplan.Event) {
		var events []runplan.Event // executor serializes sink calls
		o := Options{Insts: 40_000, Seed: 1, Jobs: jobs,
			Progress: runplan.SinkFunc(func(e runplan.Event) { events = append(events, e) })}
		s, err := Fig13(o, subset)
		if err != nil {
			t.Fatal(err)
		}
		return s, events
	}
	pooledSweep, events := run(4)

	const modes = 15
	wantVariants := len(subset) * modes
	var baselines, variants int
	for _, e := range events {
		switch e.Kind {
		case runplan.KindBaseline:
			baselines++
		case runplan.KindVariant:
			variants++
		}
	}
	if baselines != len(subset) {
		t.Errorf("baselines simulated %d times, want exactly %d (one per unique config)", baselines, len(subset))
	}
	if variants != wantVariants {
		t.Errorf("variants simulated %d times, want %d", variants, wantVariants)
	}

	serialSweep, _ := run(1)
	if !bytes.Equal(renderAll(t, serialSweep), renderAll(t, pooledSweep)) {
		t.Error("pooled results differ from the serial path")
	}
}
