// Table 3 and Fig 10: the circuit-level artifacts, plus the Fig 8 wiring
// table.

package experiments

import (
	"repro/internal/circuit"
	"repro/internal/mcr"
	"repro/internal/timing"
)

// Table3Row pairs the paper's canonical timing column with the value our
// circuit model derives.
type Table3Row struct {
	K, M                   int
	Paper, Derived         timing.ModeTiming
	TRCDDevPct, TRASDevPct float64 // relative deviation of the derivation
}

// Table3 regenerates Table 3: canonical values alongside the circuit-model
// derivation.
func Table3() ([]Table3Row, error) {
	p := circuit.Default()
	var rows []Table3Row
	for _, t := range timing.Table3() {
		d, err := timing.Derive(p, t.K, t.M, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			K: t.K, M: t.M,
			Paper:      t,
			Derived:    d,
			TRCDDevPct: (d.TRCDNS - t.TRCDNS) / t.TRCDNS * 100,
			TRASDevPct: (d.TRASNS - t.TRASNS) / t.TRASNS * 100,
		})
	}
	return rows, nil
}

// Fig10 returns the activation transients (bitline and cell voltage versus
// time) for 1x, 2x and 4x MCRs, sampled every sampleNS over horizonNS.
func Fig10(horizonNS, sampleNS float64) []*circuit.Transient {
	p := circuit.Default()
	var out []*circuit.Transient
	for _, k := range []int{1, 2, 4} {
		out = append(out, p.Simulate(k, horizonNS, sampleNS))
	}
	return out
}

// Fig8Row is one line of the Fig 8 comparison: worst-case refresh interval
// per MCR size under each wiring, for the paper's 3-bit illustration and
// the real 13-bit REF counter.
type Fig8Row struct {
	K                      int
	KtoK3Bit, KtoN1K3Bit   float64 // ms, 3-bit counter (the figure)
	KtoK13Bit, KtoN1K13Bit float64 // ms, 13-bit REF counter (the device)
}

// Fig8 regenerates the wiring comparison.
func Fig8() []Fig8Row {
	var rows []Fig8Row
	for _, k := range []int{1, 2, 4} {
		rows = append(rows, Fig8Row{
			K:           k,
			KtoK3Bit:    mcr.MaxRefreshIntervalMs(mcr.KtoK, 3, k, timing.RetentionWindowMs),
			KtoN1K3Bit:  mcr.MaxRefreshIntervalMs(mcr.KtoN1K, 3, k, timing.RetentionWindowMs),
			KtoK13Bit:   mcr.MaxRefreshIntervalMs(mcr.KtoK, 13, k, timing.RetentionWindowMs),
			KtoN1K13Bit: mcr.MaxRefreshIntervalMs(mcr.KtoN1K, 13, k, timing.RetentionWindowMs),
		})
	}
	return rows
}
