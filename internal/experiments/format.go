// Plain-text rendering of the regenerated figures, paper-style.

package experiments

import (
	"fmt"
	"io"
	"sort"
)

// WriteSweep renders a sweep as an aligned text table: one row per
// workload, one column group per configuration, followed by the averages.
func WriteSweep(w io.Writer, s *Sweep, metric string) error {
	configs := configOrder(s)
	if _, err := fmt.Fprintf(w, "%s (%s reduction %%)\n", s.Figure, metric); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s", "workload"); err != nil {
		return err
	}
	for _, c := range configs {
		if _, err := fmt.Fprintf(w, " %20s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	byWorkload := map[string]map[string]Reduction{}
	var order []string
	for _, p := range s.Points {
		if _, ok := byWorkload[p.Workload]; !ok {
			order = append(order, p.Workload)
			byWorkload[p.Workload] = map[string]Reduction{}
		}
		byWorkload[p.Workload][p.Config] = p.Reduction
	}
	pick := func(r Reduction) float64 {
		switch metric {
		case "readlat":
			return r.ReadLatency
		case "edp":
			return r.EDP
		default:
			return r.ExecTime
		}
	}
	for _, wl := range order {
		if _, err := fmt.Fprintf(w, "%-12s", wl); err != nil {
			return err
		}
		for _, c := range configs {
			if _, err := fmt.Fprintf(w, " %20.2f", pick(byWorkload[wl][c])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-12s", "AVG"); err != nil {
		return err
	}
	for _, c := range configs {
		if _, err := fmt.Fprintf(w, " %20.2f", pick(s.Average[c])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// configOrder returns the configurations in first-appearance order.
func configOrder(s *Sweep) []string {
	seen := map[string]bool{}
	var order []string
	for _, p := range s.Points {
		if !seen[p.Config] {
			seen[p.Config] = true
			order = append(order, p.Config)
		}
	}
	return order
}

// WriteTable3 renders the Table 3 comparison.
func WriteTable3(w io.Writer, rows []Table3Row) error {
	if _, err := fmt.Fprintln(w, "Table 3: timing constraints (paper | circuit-derived)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-6s %-22s %-22s %-24s\n", "mode", "tRCD ns", "tRAS ns", "tRFC ns (1Gb/4Gb, paper)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d/%dx   %6.2f | %6.2f (%+5.1f%%) %6.2f | %6.2f (%+5.1f%%) %7.2f / %7.2f\n",
			r.M, r.K,
			r.Paper.TRCDNS, r.Derived.TRCDNS, r.TRCDDevPct,
			r.Paper.TRASNS, r.Derived.TRASNS, r.TRASDevPct,
			r.Paper.TRFC1Gb, r.Paper.TRFC4Gb); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig8 renders the wiring comparison table.
func WriteFig8(w io.Writer, rows []Fig8Row) error {
	if _, err := fmt.Fprintln(w, "Fig 8: worst-case refresh interval per MCR (ms)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %12s %12s %12s %12s\n", "K", "KtoK(3b)", "KtoN1K(3b)", "KtoK(13b)", "KtoN1K(13b)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-4d %12.2f %12.2f %12.3f %12.3f\n", r.K, r.KtoK3Bit, r.KtoN1K3Bit, r.KtoK13Bit, r.KtoN1K13Bit); err != nil {
			return err
		}
	}
	return nil
}

// WriteShootout renders the mechanism head-to-head: the execution-time
// and EDP reduction tables, then one line per backend with its speedup
// summary and its own adaptation counters.
func WriteShootout(w io.Writer, r *ShootoutResult) error {
	if err := WriteSweep(w, r.Sweep, "exec"); err != nil {
		return err
	}
	if err := WriteSweep(w, r.Sweep, "edp"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "per-mechanism summary (counters summed over workloads)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-20s %-8s %10s %10s %10s %10s %10s %10s %12s\n",
		"config", "backend", "exec%", "edp%", "fastActs", "copies", "converts", "reverts", "capLossRows"); err != nil {
		return err
	}
	for _, m := range r.Mechs {
		avg := r.Sweep.Average[m.Config]
		if _, err := fmt.Fprintf(w, "%-20s %-8s %10.2f %10.2f %10d %10d %10d %10d %12d\n",
			m.Config, m.Mechanism, avg.ExecTime, avg.EDP,
			m.Stats.FastActivates, m.Stats.Copies, m.Stats.Conversions,
			m.Stats.Reversions, m.Stats.CapacityLossRows); err != nil {
			return err
		}
	}
	return nil
}

// SortedAverageConfigs returns the sweep's configurations sorted by mean
// execution-time reduction, best first — handy for summaries.
func SortedAverageConfigs(s *Sweep) []string {
	configs := configOrder(s)
	sort.SliceStable(configs, func(i, j int) bool {
		return s.Average[configs[i]].ExecTime > s.Average[configs[j]].ExecTime
	})
	return configs
}
