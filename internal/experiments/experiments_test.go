package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/runplan"
)

// fastOpts keeps CI runtime sane; the figure engines are exercised on a
// two-workload subset (the cmd/reproduce binary runs the full sets).
func fastOpts() Options { return Options{Insts: 60_000, Seed: 1} }

var subset = []string{"tigr", "black"}

func TestTable3RowsAndDeviation(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 3 must have 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.TRCDDevPct > 15 || r.TRCDDevPct < -15 || r.TRASDevPct > 15 || r.TRASDevPct < -15 {
			t.Errorf("mode %d/%dx derivation too far off: tRCD %+.1f%% tRAS %+.1f%%",
				r.M, r.K, r.TRCDDevPct, r.TRASDevPct)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4/4x") {
		t.Fatal("rendered table must list the 4/4x mode")
	}
}

func TestFig10Transients(t *testing.T) {
	trs := Fig10(40, 2)
	if len(trs) != 3 {
		t.Fatalf("Fig 10 needs 1x/2x/4x, got %d", len(trs))
	}
	for i, k := range []int{1, 2, 4} {
		if trs[i].K != k || len(trs[i].T) == 0 {
			t.Fatalf("transient %d malformed", i)
		}
	}
}

func TestFig8Table(t *testing.T) {
	rows := Fig8()
	if len(rows) != 3 {
		t.Fatalf("Fig 8 needs K=1,2,4, got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.K == 2 && (r.KtoK3Bit != 56 || r.KtoN1K3Bit != 32) {
			t.Fatalf("2x row wrong: %+v", r)
		}
		if r.K == 4 && (r.KtoK3Bit != 40 || r.KtoN1K3Bit != 16) {
			t.Fatalf("4x row wrong: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteFig8(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "KtoN1K") {
		t.Fatal("rendered Fig 8 incomplete")
	}
}

func TestFig11SubsetShape(t *testing.T) {
	s, err := Fig11(fastOpts(), subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(subset)*6 {
		t.Fatalf("Fig 11 points = %d, want %d", len(s.Points), len(subset)*6)
	}
	// Paper shape: [4/4x] at ratio 1.0 is the best configuration on
	// average, and improvements grow with the ratio.
	best := s.Average["[4/4x] ratio 1.00"]
	for cfgName, r := range s.Average {
		if r.ExecTime > best.ExecTime+1e-9 {
			t.Fatalf("%s (%.2f%%) beats [4/4x] ratio 1.0 (%.2f%%)", cfgName, r.ExecTime, best.ExecTime)
		}
	}
	if s.Average["[4/4x] ratio 1.00"].ExecTime <= s.Average["[4/4x] ratio 0.25"].ExecTime {
		t.Fatal("larger MCR ratio must help more")
	}
	// tigr must be among the most improved (paper: up to 17.2%).
	var tigrBest float64
	for _, p := range s.Points {
		if p.Workload == "tigr" && p.Reduction.ExecTime > tigrBest {
			tigrBest = p.Reduction.ExecTime
		}
	}
	if tigrBest < 5 {
		t.Fatalf("tigr best exec reduction %.1f%%, expected a large MCR win", tigrBest)
	}
}

func TestFig12AllocationMonotone(t *testing.T) {
	s, err := Fig12(fastOpts(), []string{"comm2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("Fig 12 points = %d, want 3", len(s.Points))
	}
	a10 := s.Average["alloc 10%"].ExecTime
	a30 := s.Average["alloc 30%"].ExecTime
	if a30+0.5 < a10 { // allow small noise; a30 should not be clearly worse
		t.Fatalf("30%% allocation (%.2f%%) clearly worse than 10%% (%.2f%%)", a30, a10)
	}
}

func TestFig17CaseOrdering(t *testing.T) {
	s, err := Fig17(fastOpts(), false, []string{"tigr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("Fig 17 points = %d, want 4", len(s.Points))
	}
	c1 := s.Average["case1 EA"].ExecTime
	c2 := s.Average["case2 EA+EP"].ExecTime
	if c2 <= c1 {
		t.Fatalf("case2 (%.2f%%) must beat case1 (%.2f%%)", c2, c1)
	}
}

func TestFig18EDP(t *testing.T) {
	s, err := Fig18(fastOpts(), false, []string{"tigr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("Fig 18 points = %d, want 3", len(s.Points))
	}
	if s.Average["mode [4/4x/100%reg]"].EDP <= 0 {
		t.Fatal("4/4x must improve EDP on tigr")
	}
}

func TestAblationWiring(t *testing.T) {
	s, err := Ablation(fastOpts(), AblationWiring, []string{"tigr"})
	if err != nil {
		t.Fatal(err)
	}
	good := s.Average["wiring K-to-N-1-K"].ExecTime
	bad := s.Average["wiring K-to-K"].ExecTime
	if good <= bad {
		t.Fatalf("the paper's wiring (%.2f%%) must beat K-to-K (%.2f%%)", good, bad)
	}
}

func TestMultiCoreMixes(t *testing.T) {
	mixes := MultiCoreMixes()
	if len(mixes) != 16 {
		t.Fatalf("paper uses 16 quad-core workloads, got %d", len(mixes))
	}
	for i, mix := range mixes[:14] {
		if len(mix) != 4 {
			t.Fatalf("mix %d has %d workloads", i, len(mix))
		}
		if isShared(mix) {
			t.Fatalf("mix %d misclassified as multithreaded", i)
		}
	}
	for _, mt := range mixes[14:] {
		if !isShared(mt) {
			t.Fatalf("MT workload %v not recognized", mt)
		}
	}
	if MixName(0, mixes[0]) != "mix01" || MixName(14, mixes[14]) != "MT-fluid" {
		t.Fatal("mix names wrong")
	}
}

func TestWriteSweepRendering(t *testing.T) {
	s := &Sweep{
		Figure: "demo",
		Points: []SweepPoint{
			{Workload: "a", Config: "x", Reduction: Reduction{ExecTime: 1, ReadLatency: 2, EDP: 3}},
			{Workload: "b", Config: "x", Reduction: Reduction{ExecTime: 3, ReadLatency: 4, EDP: 5}},
		},
	}
	s.averageByConfig()
	for _, metric := range []string{"exec", "readlat", "edp"} {
		var buf bytes.Buffer
		if err := WriteSweep(&buf, s, metric); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "AVG") || !strings.Contains(out, "demo") {
			t.Fatalf("%s rendering incomplete:\n%s", metric, out)
		}
	}
	if got := s.Average["x"].ExecTime; got != 2 {
		t.Fatalf("average = %g, want 2", got)
	}
	order := SortedAverageConfigs(s)
	if len(order) != 1 || order[0] != "x" {
		t.Fatalf("sorted configs = %v", order)
	}
}

func TestProgressSink(t *testing.T) {
	var events []runplan.Event // no locking: executor serializes sink calls
	o := fastOpts()
	o.Jobs = 4
	o.Progress = runplan.SinkFunc(func(e runplan.Event) { events = append(events, e) })
	if _, err := Fig18(o, false, []string{"black"}); err != nil {
		t.Fatal(err)
	}
	// 3 variants + 1 memoized baseline.
	if len(events) != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	var baselines int
	for _, e := range events {
		if e.Kind == runplan.KindBaseline {
			baselines++
		}
		if e.Stats.Wall <= 0 || e.Stats.MemCycles <= 0 || e.Stats.Retired <= 0 {
			t.Fatalf("event missing instrumentation: %+v", e)
		}
		if e.Total != 4 || e.Done < 1 || e.Done > 4 || e.Pending != e.Total-e.Done {
			t.Fatalf("event accounting wrong: %+v", e)
		}
	}
	if baselines != 1 {
		t.Fatalf("baseline simulated %d times, want exactly 1", baselines)
	}
}

func TestNormalizeTo(t *testing.T) {
	s := &Sweep{
		Figure: "demo",
		Points: []SweepPoint{
			{Workload: "a", Config: "case2", Reduction: Reduction{ExecTime: 5}},
			{Workload: "a", Config: "case3", Reduction: Reduction{ExecTime: 10}},
		},
	}
	s.averageByConfig()
	norm, err := NormalizeTo(s, "case3")
	if err != nil {
		t.Fatal(err)
	}
	if norm["case3"] != 1 || norm["case2"] != 0.5 {
		t.Fatalf("normalization wrong: %v", norm)
	}
	if _, err := NormalizeTo(s, "nope"); err == nil {
		t.Fatal("unknown reference must error")
	}
}

func TestTLDRAMComparisonShape(t *testing.T) {
	s, err := TLDRAMComparison(fastOpts(), []string{"tigr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(s.Points))
	}
	// The MCR and TL schemes must beat the baseline on tigr; the NUAT-like
	// comparator's tRCD-only gain is within scheduling noise at this trace
	// length, so it only has to be non-degrading.
	for cfg, r := range s.Average {
		if cfg == "NUAT-like charge-aware" {
			if r.ExecTime < -2 {
				t.Errorf("%s: exec reduction %.2f degrades beyond noise", cfg, r.ExecTime)
			}
			continue
		}
		if r.ExecTime <= 0 {
			t.Errorf("%s: exec reduction %.2f must be positive", cfg, r.ExecTime)
		}
	}
}

func TestCombinedLayoutShape(t *testing.T) {
	s, err := CombinedLayout(fastOpts(), []string{"comm2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if s.Average["combined 4x+2x"].ExecTime <= 0 {
		t.Fatal("the combined layout must beat the baseline on comm2")
	}
}
