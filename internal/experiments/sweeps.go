// The figure sweeps: MCR-ratio sensitivity (Figs 11/14), profile-based
// allocation (Figs 12/15), MCR-mode analysis (Figs 13/16), the mechanism
// ablation (Fig 17) and the EDP comparison (Fig 18).
//
// Every sweep is expressed as data — a runplan.Plan of (workload, config)
// cells — and executed by the pooled runplan.Executor, which memoizes the
// per-workload MCR-off baseline so it is simulated exactly once per plan
// no matter how many configurations reference it.

package experiments

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/mcr"
	"repro/internal/runplan"
)

// SweepPoint is one (workload/mix, configuration) cell of a figure.
type SweepPoint struct {
	Workload string
	Config   string // figure-specific label, e.g. "[4/4x] ratio 1.0"
	Reduction
}

// Sweep is one regenerated figure: its points plus per-configuration means
// (the "avg" bars of the paper's plots).
type Sweep struct {
	Figure  string
	Points  []SweepPoint
	Average map[string]Reduction
}

// averageByConfig fills Sweep.Average.
func (s *Sweep) averageByConfig() {
	byCfg := map[string][]Reduction{}
	var order []string
	for _, p := range s.Points {
		if _, ok := byCfg[p.Config]; !ok {
			order = append(order, p.Config)
		}
		byCfg[p.Config] = append(byCfg[p.Config], p.Reduction)
	}
	s.Average = make(map[string]Reduction, len(order))
	for _, cfg := range order {
		s.Average[cfg] = mean(byCfg[cfg])
	}
}

// eaEpOnly is the Fig 11/14 mechanism set: Early-Access and Early-Precharge
// without Fast-Refresh or Refresh-Skipping.
func eaEpOnly() dram.Mechanisms {
	return dram.Mechanisms{EarlyAccess: true, EarlyPrecharge: true}
}

// ratioModes are the Fig 11/14 configurations: modes [2/2x] and [4/4x] at
// MCR-to-total-row ratios 0.25, 0.5 and 1.0.
func ratioModes() []struct {
	label string
	mode  mcr.Mode
} {
	var out []struct {
		label string
		mode  mcr.Mode
	}
	for _, k := range []int{2, 4} {
		for _, ratio := range []float64{0.25, 0.5, 1.0} {
			out = append(out, struct {
				label string
				mode  mcr.Mode
			}{
				label: fmt.Sprintf("[%d/%dx] ratio %.2f", k, k, ratio),
				mode:  mcr.MustMode(k, k, ratio),
			})
		}
	}
	return out
}

// ratioPlan declares the Fig 11/14 sweep: every workload × ratio-mode
// cell against the shared per-workload baseline.
func ratioPlan(o Options, figure string, multicore bool, workloads [][]string, names []string) *runplan.Plan {
	plan := &runplan.Plan{Name: figure}
	for wi, wl := range workloads {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, m := range ratioModes() {
			cfg := baseConfig(o, multicore, wl, m.mode, eaEpOnly(), 0, isShared(wl))
			plan.AddPair(names[wi], m.label, cfg, base)
		}
	}
	return plan
}

// isShared reports whether a mix is a multithreaded (shared footprint) run.
func isShared(mix []string) bool {
	return len(mix) == 4 && (mix[0] == "MT-fluid" || mix[0] == "MT-canneal") && mix[0] == mix[1]
}

// singleWorkloadSets adapts the 14 single-core workloads to the sweep engine.
func singleWorkloadSets(names []string) ([][]string, []string) {
	sets := make([][]string, len(names))
	for i, n := range names {
		sets[i] = []string{n}
	}
	return sets, names
}

// multiWorkloadSets adapts the 16 quad-core mixes, truncated to
// o.MaxMixes when set.
func multiWorkloadSets(o Options) ([][]string, []string) {
	mixes := MultiCoreMixes()
	if o.MaxMixes > 0 && o.MaxMixes < len(mixes) {
		mixes = mixes[:o.MaxMixes]
	}
	names := make([]string, len(mixes))
	for i, m := range mixes {
		names[i] = MixName(i, m)
	}
	return mixes, names
}

// Fig11 regenerates the single-core MCR-ratio sensitivity figure.
func Fig11(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := singleWorkloadSets(workloads)
	return o.runSweep(ratioPlan(o, "fig11", false, sets, names))
}

// Fig14 regenerates the multi-core MCR-ratio sensitivity figure.
func Fig14(o Options) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := multiWorkloadSets(o)
	return o.runSweep(ratioPlan(o, "fig14", true, sets, names))
}

// allocPlan declares the Fig 12/15 sweep: mode [4/4x/50%reg] with
// profile-based page allocation at 10/20/30%.
func allocPlan(o Options, figure string, multicore bool, workloads [][]string, names []string) *runplan.Plan {
	plan := &runplan.Plan{Name: figure}
	mode := mcr.MustMode(4, 4, 0.5)
	for wi, wl := range workloads {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, ratio := range []float64{0.1, 0.2, 0.3} {
			cfg := baseConfig(o, multicore, wl, mode, dram.AllMechanisms(), ratio, isShared(wl))
			plan.AddPair(names[wi], fmt.Sprintf("alloc %.0f%%", ratio*100), cfg, base)
		}
	}
	return plan
}

// Fig12 regenerates the single-core profile-allocation figure.
func Fig12(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := singleWorkloadSets(workloads)
	return o.runSweep(allocPlan(o, "fig12", false, sets, names))
}

// Fig15 regenerates the multi-core profile-allocation figure.
func Fig15(o Options) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := multiWorkloadSets(o)
	return o.runSweep(allocPlan(o, "fig15", true, sets, names))
}

// modeAnalysisConfigs are the Fig 13/16 MCR-modes: every M/Kx variant at
// region 25/50/75%.
func modeAnalysisConfigs() []mcr.Mode {
	var out []mcr.Mode
	for _, km := range [][2]int{{2, 2}, {2, 1}, {4, 4}, {4, 2}, {4, 1}} {
		for _, reg := range []float64{0.25, 0.5, 0.75} {
			out = append(out, mcr.MustMode(km[0], km[1], reg))
		}
	}
	return out
}

// modePlan declares the Fig 13/16 sweep: 10% allocation, all mechanisms,
// 15 modes per workload sharing one memoized baseline each.
func modePlan(o Options, figure string, multicore bool, workloads [][]string, names []string) *runplan.Plan {
	plan := &runplan.Plan{Name: figure}
	for wi, wl := range workloads {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, mode := range modeAnalysisConfigs() {
			cfg := baseConfig(o, multicore, wl, mode, dram.AllMechanisms(), 0.1, isShared(wl))
			plan.AddPair(names[wi], mode.String(), cfg, base)
		}
	}
	return plan
}

// Fig13 regenerates the single-core MCR-mode analysis.
func Fig13(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := singleWorkloadSets(workloads)
	return o.runSweep(modePlan(o, "fig13", false, sets, names))
}

// Fig16 regenerates the multi-core MCR-mode analysis.
func Fig16(o Options) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := multiWorkloadSets(o)
	return o.runSweep(modePlan(o, "fig16", true, sets, names))
}
