// The figure sweeps: MCR-ratio sensitivity (Figs 11/14), profile-based
// allocation (Figs 12/15), MCR-mode analysis (Figs 13/16), the mechanism
// ablation (Fig 17) and the EDP comparison (Fig 18).
//
// Every sweep is expressed as data — a runplan.Plan of (workload, config)
// cells — and executed by the pooled runplan.Executor, which memoizes the
// per-workload MCR-off baseline so it is simulated exactly once per plan
// no matter how many configurations reference it.

package experiments

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/mcr"
	"repro/internal/obs"
	"repro/internal/runplan"
)

// SweepPoint is one (workload/mix, configuration) cell of a figure.
type SweepPoint struct {
	Workload string
	Config   string // figure-specific label, e.g. "[4/4x] ratio 1.0"
	Reduction
}

// Sweep is one regenerated figure: its points plus per-configuration means
// (the "avg" bars of the paper's plots).
type Sweep struct {
	Figure  string
	Points  []SweepPoint
	Average map[string]Reduction
	// Traces holds one labelled event-trace group per variant run when
	// Options.TraceCap was positive; export all of them into one Chrome
	// trace_event file with obs.WriteChromeGroups.
	Traces []obs.TraceGroup
}

// averageByConfig fills Sweep.Average.
func (s *Sweep) averageByConfig() {
	byCfg := map[string][]Reduction{}
	var order []string
	for _, p := range s.Points {
		if _, ok := byCfg[p.Config]; !ok {
			order = append(order, p.Config)
		}
		byCfg[p.Config] = append(byCfg[p.Config], p.Reduction)
	}
	s.Average = make(map[string]Reduction, len(order))
	for _, cfg := range order {
		s.Average[cfg] = mean(byCfg[cfg])
	}
}

// eaEpOnly is the Fig 11/14 mechanism set: Early-Access and Early-Precharge
// without Fast-Refresh or Refresh-Skipping.
func eaEpOnly() dram.Mechanisms {
	return dram.Mechanisms{EarlyAccess: true, EarlyPrecharge: true}
}

// labeledMode pairs a figure label with its MCR-mode.
type labeledMode struct {
	label string
	mode  mcr.Mode
}

// ratioModes are the Fig 11/14 configurations: modes [2/2x] and [4/4x] at
// MCR-to-total-row ratios 0.25, 0.5 and 1.0.
func ratioModes() ([]labeledMode, error) {
	var out []labeledMode
	for _, k := range []int{2, 4} {
		for _, ratio := range []float64{0.25, 0.5, 1.0} {
			mode, err := mcr.NewMode(k, k, ratio)
			if err != nil {
				return nil, err
			}
			out = append(out, labeledMode{
				label: fmt.Sprintf("[%d/%dx] ratio %.2f", k, k, ratio),
				mode:  mode,
			})
		}
	}
	return out, nil
}

// ratioPlan declares the Fig 11/14 sweep: every workload × ratio-mode
// cell against the shared per-workload baseline.
func ratioPlan(o Options, figure string, multicore bool, workloads [][]string, names []string) (*runplan.Plan, error) {
	modes, err := ratioModes()
	if err != nil {
		return nil, err
	}
	plan := &runplan.Plan{Name: figure}
	for wi, wl := range workloads {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, m := range modes {
			cfg := baseConfig(o, multicore, wl, m.mode, eaEpOnly(), 0, isShared(wl))
			plan.AddPair(names[wi], m.label, cfg, base)
		}
	}
	return plan, nil
}

// isShared reports whether a mix is a multithreaded (shared footprint) run.
func isShared(mix []string) bool {
	return len(mix) == 4 && (mix[0] == "MT-fluid" || mix[0] == "MT-canneal") && mix[0] == mix[1]
}

// singleWorkloadSets adapts the 14 single-core workloads to the sweep engine.
func singleWorkloadSets(names []string) ([][]string, []string) {
	sets := make([][]string, len(names))
	for i, n := range names {
		sets[i] = []string{n}
	}
	return sets, names
}

// multiWorkloadSets adapts the 16 quad-core mixes, truncated to
// o.MaxMixes when set.
func multiWorkloadSets(o Options) ([][]string, []string) {
	mixes := MultiCoreMixes()
	if o.MaxMixes > 0 && o.MaxMixes < len(mixes) {
		mixes = mixes[:o.MaxMixes]
	}
	names := make([]string, len(mixes))
	for i, m := range mixes {
		names[i] = MixName(i, m)
	}
	return mixes, names
}

// Fig11 regenerates the single-core MCR-ratio sensitivity figure.
func Fig11(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := singleWorkloadSets(workloads)
	plan, err := ratioPlan(o, "fig11", false, sets, names)
	if err != nil {
		return nil, err
	}
	return o.runSweep(plan)
}

// Fig14 regenerates the multi-core MCR-ratio sensitivity figure.
func Fig14(o Options) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := multiWorkloadSets(o)
	plan, err := ratioPlan(o, "fig14", true, sets, names)
	if err != nil {
		return nil, err
	}
	return o.runSweep(plan)
}

// allocPlan declares the Fig 12/15 sweep: mode [4/4x/50%reg] with
// profile-based page allocation at 10/20/30%.
func allocPlan(o Options, figure string, multicore bool, workloads [][]string, names []string) (*runplan.Plan, error) {
	mode, err := mcr.NewMode(4, 4, 0.5)
	if err != nil {
		return nil, err
	}
	plan := &runplan.Plan{Name: figure}
	for wi, wl := range workloads {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, ratio := range []float64{0.1, 0.2, 0.3} {
			cfg := baseConfig(o, multicore, wl, mode, dram.AllMechanisms(), ratio, isShared(wl))
			plan.AddPair(names[wi], fmt.Sprintf("alloc %.0f%%", ratio*100), cfg, base)
		}
	}
	return plan, nil
}

// Fig12 regenerates the single-core profile-allocation figure.
func Fig12(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := singleWorkloadSets(workloads)
	plan, err := allocPlan(o, "fig12", false, sets, names)
	if err != nil {
		return nil, err
	}
	return o.runSweep(plan)
}

// Fig15 regenerates the multi-core profile-allocation figure.
func Fig15(o Options) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := multiWorkloadSets(o)
	plan, err := allocPlan(o, "fig15", true, sets, names)
	if err != nil {
		return nil, err
	}
	return o.runSweep(plan)
}

// modeAnalysisConfigs are the Fig 13/16 MCR-modes: every M/Kx variant at
// region 25/50/75%.
func modeAnalysisConfigs() ([]mcr.Mode, error) {
	var out []mcr.Mode
	for _, km := range [][2]int{{2, 2}, {2, 1}, {4, 4}, {4, 2}, {4, 1}} {
		for _, reg := range []float64{0.25, 0.5, 0.75} {
			mode, err := mcr.NewMode(km[0], km[1], reg)
			if err != nil {
				return nil, err
			}
			out = append(out, mode)
		}
	}
	return out, nil
}

// modePlan declares the Fig 13/16 sweep: 10% allocation, all mechanisms,
// 15 modes per workload sharing one memoized baseline each.
func modePlan(o Options, figure string, multicore bool, workloads [][]string, names []string) (*runplan.Plan, error) {
	modes, err := modeAnalysisConfigs()
	if err != nil {
		return nil, err
	}
	plan := &runplan.Plan{Name: figure}
	for wi, wl := range workloads {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, mode := range modes {
			cfg := baseConfig(o, multicore, wl, mode, dram.AllMechanisms(), 0.1, isShared(wl))
			plan.AddPair(names[wi], mode.String(), cfg, base)
		}
	}
	return plan, nil
}

// Fig13 regenerates the single-core MCR-mode analysis.
func Fig13(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := singleWorkloadSets(workloads)
	plan, err := modePlan(o, "fig13", false, sets, names)
	if err != nil {
		return nil, err
	}
	return o.runSweep(plan)
}

// Fig16 regenerates the multi-core MCR-mode analysis.
func Fig16(o Options) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := multiWorkloadSets(o)
	plan, err := modePlan(o, "fig16", true, sets, names)
	if err != nil {
		return nil, err
	}
	return o.runSweep(plan)
}
