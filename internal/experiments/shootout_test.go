package experiments

import (
	"strings"
	"testing"
)

// TestShootoutRacesAllBackends: the head-to-head covers all five
// mechanisms, every variant reduces against the shared baseline, and the
// dynamic backends report their adaptation counters.
func TestShootoutRacesAllBackends(t *testing.T) {
	r, err := Shootout(fastOpts(), []string{"stream"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Mechs); got != 5 {
		t.Fatalf("shootout raced %d mechanisms, want 5", got)
	}
	wantBackends := map[string]bool{"mcr": false, "tldram": false, "nuat": false, "crow": false, "clr": false}
	for _, m := range r.Mechs {
		if _, ok := wantBackends[m.Mechanism]; !ok {
			t.Errorf("unexpected backend %q (config %q)", m.Mechanism, m.Config)
			continue
		}
		wantBackends[m.Mechanism] = true
		if m.Runs != 1 {
			t.Errorf("%s: %d runs, want 1", m.Mechanism, m.Runs)
		}
	}
	for name, seen := range wantBackends {
		if !seen {
			t.Errorf("backend %s missing from the shootout", name)
		}
	}
	if got := len(r.Sweep.Points); got != 5 {
		t.Fatalf("sweep has %d points, want 5", got)
	}
	for _, m := range r.Mechs {
		switch m.Mechanism {
		case "crow":
			if m.Stats.Copies == 0 {
				t.Error("CROW copied no rows on a streaming workload")
			}
			if m.Stats.CapacityLossRows != m.Stats.Copies {
				t.Errorf("CROW capacity loss %d != copies %d", m.Stats.CapacityLossRows, m.Stats.Copies)
			}
		case "clr":
			if m.Stats.Conversions == 0 {
				t.Error("CLR converted no row pairs on a streaming workload")
			}
		case "mcr", "tldram":
			if m.Stats.FastActivates == 0 {
				t.Errorf("%s served no fast activates", m.Mechanism)
			}
		}
	}
}

// TestWriteShootout: the rendering names every backend and the counter
// columns.
func TestWriteShootout(t *testing.T) {
	r, err := Shootout(fastOpts(), []string{"comm2"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteShootout(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"shootout", "mcr", "tldram", "nuat", "crow", "clr", "copies", "converts", "capLossRows"} {
		if !strings.Contains(out, want) {
			t.Errorf("shootout rendering missing %q:\n%s", want, out)
		}
	}
}
