package experiments

import (
	"strings"
	"testing"

	"repro/internal/mcr/mcrtest"
)

func TestSummarize(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.StdDev != 1 {
		t.Fatalf("stddev = %g, want 1", s.StdDev)
	}
	one := summarize([]float64{5})
	if one.StdDev != 0 || one.Mean != 5 {
		t.Fatalf("single-sample summary wrong: %+v", one)
	}
	empty := summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary must be zero")
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatal("rendering must carry the sample count")
	}
}

func TestRepeatedComparison(t *testing.T) {
	o := Options{Insts: 50_000, Seed: 1}
	exec, readlat, edp, err := RepeatedComparison(o, "tigr", mcrtest.Mode(4, 4, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if exec.N != 3 || readlat.N != 3 || edp.N != 3 {
		t.Fatalf("sample counts wrong: %d %d %d", exec.N, readlat.N, edp.N)
	}
	// The headline must hold on every seed: min reduction positive.
	if exec.Min <= 0 {
		t.Fatalf("4/4x must beat the baseline on every seed, min = %.2f", exec.Min)
	}
	if edp.Mean <= 0 {
		t.Fatalf("EDP mean reduction must be positive, got %.2f", edp.Mean)
	}
	// Different seeds genuinely vary (std dev non-degenerate is not
	// guaranteed, but identical results across seeds would indicate the
	// seed isn't plumbed through).
	if exec.Min == exec.Max {
		t.Fatal("seeds produced identical results; seeding is broken")
	}
}

func TestRepeatedComparisonRejectsZeroSeeds(t *testing.T) {
	if _, _, _, err := RepeatedComparison(Options{}, "tigr", mcrtest.Mode(2, 2, 1), 0); err == nil {
		t.Fatal("zero seeds must be rejected")
	}
}
