package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestResilienceStudy drives the full sweep at one workload with an
// aggressive injected fraction so every policy cell has work to do.
func TestResilienceStudy(t *testing.T) {
	opt := Quick()
	rows, err := ResilienceStudy(opt, []string{"stream"}, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // detect + degrade
		t.Fatalf("%d rows, want 2", len(rows))
	}
	var detect, degrade ResilienceRow
	for _, r := range rows {
		switch {
		case strings.HasSuffix(r.Config, "detect"):
			detect = r
		case strings.HasSuffix(r.Config, "degrade"):
			degrade = r
		default:
			t.Fatalf("unlabelled row %+v", r)
		}
	}
	if detect.ECCEvents == 0 {
		t.Fatal("aggressive injection produced no ECC events")
	}
	if detect.Downgrades != 0 || detect.QuarantinedRows != 0 {
		t.Fatalf("detect-only policy acted: %+v", detect)
	}
	if degrade.QuarantinedRows == 0 {
		t.Fatalf("degradation policy never quarantined: %+v", degrade)
	}
	if degrade.FinalMode == "" || detect.FinalMode == "" {
		t.Fatal("rows lack mode labels")
	}

	var buf bytes.Buffer
	if err := WriteResilience(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"resilience:", "ECC", "final mode", "slowdown%", "stream"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestResilienceStudyDefaults checks the default fraction grid shapes
// the plan (rows = workloads × fractions × 2 policies) without running
// full-length simulations.
func TestResilienceStudyDefaults(t *testing.T) {
	cells := resilienceCells(1, DefaultWeakFractions)
	if len(cells) != len(DefaultWeakFractions)*2 {
		t.Fatalf("%d cells, want %d", len(cells), len(DefaultWeakFractions)*2)
	}
	for _, c := range cells {
		if c.faults.WeakFraction <= 0 || c.faults.Seed != 1 {
			t.Fatalf("bad cell fault config: %+v", c.faults)
		}
	}
	if cells[1].policy.DowngradeAfter == 0 || cells[0].policy.DowngradeAfter != 0 {
		t.Fatal("policy grid misordered (detect first, then degrade)")
	}
}
