// The mechanism shootout: every pluggable latency backend — MCR-DRAM and
// the four related-work comparators (TL-DRAM, NUAT, CROW, CLR-DRAM) —
// raced head-to-head over one workload set, one power model and one
// shared per-workload conventional baseline. Beyond the reduction sweep,
// the shootout surfaces each backend's own counters (copies, conversions,
// reversions) so the dynamic mechanisms' adaptation cost is visible next
// to their speedup.

package experiments

import (
	"repro/internal/dram"
	"repro/internal/mcr"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ShootoutMech aggregates one variant's backend counters over the whole
// workload set.
type ShootoutMech struct {
	// Config is the variant label (sweep column); Mechanism is the backend
	// name the devices reported ("mcr", "tldram", "nuat", "crow", "clr").
	Config    string
	Mechanism string
	// Stats sums the backend counters over all workloads; Runs is how many
	// simulations contributed.
	Stats mech.Stats
	Runs  int
}

// ShootoutResult is the head-to-head comparison: the reduction sweep plus
// the per-mechanism counter aggregation (variant order).
type ShootoutResult struct {
	Sweep *Sweep
	Mechs []ShootoutMech
}

// Shootout races all five mechanism backends over the given single-core
// workloads. Every backend gets a 50% fast region where the concept
// applies (MCR region, TL near segment) and its default parameters
// otherwise; no profile allocation, so traffic lands on fast rows in
// proportion to region size and the comparison isolates each mechanism's
// timing trade-offs under identical traffic and energy accounting.
func Shootout(o Options, workloads []string) (*ShootoutResult, error) {
	o = o.withDefaults()
	half4, err := mcr.NewMode(4, 4, 0.5)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{"MCR [4/4x/50%reg]", func(c *sim.Config) {
			c.DRAM.Mode = half4
			c.DRAM.Mech = dram.AllMechanisms()
		}},
		{"TL-DRAM-like", func(c *sim.Config) {
			tl := dram.DefaultTLConfig()
			c.DRAM.Mode = mcr.Off()
			c.DRAM.TL = &tl
		}},
		{"NUAT-like", func(c *sim.Config) {
			n := dram.DefaultNUATConfig()
			c.DRAM.Mode = mcr.Off()
			c.DRAM.NUAT = &n
		}},
		{"CROW-like", func(c *sim.Config) {
			cr := dram.DefaultCROWConfig()
			c.DRAM.Mode = mcr.Off()
			c.DRAM.CROW = &cr
		}},
		{"CLR-DRAM-like", func(c *sim.Config) {
			cl := dram.DefaultCLRConfig()
			c.DRAM.Mode = mcr.Off()
			c.DRAM.CLR = &cl
		}},
	}
	plan := variantPlan(o, "shootout", workloads, dram.Mechanisms{}, mcr.Off(), variants)
	results, err := o.execute(plan)
	if err != nil && !o.KeepGoing {
		return nil, err
	}
	out := &ShootoutResult{Sweep: &Sweep{Figure: plan.Name}}
	agg := map[string]*ShootoutMech{}
	var order []string
	for _, r := range results {
		if r.Run == nil {
			continue // failed under KeepGoing; reported via err
		}
		out.Sweep.Points = append(out.Sweep.Points, SweepPoint{Workload: r.Workload, Config: r.Config, Reduction: reduce(r.Base, r.Run)})
		if r.Trace != nil {
			out.Sweep.Traces = append(out.Sweep.Traces, obs.TraceGroup{Label: r.Workload + " " + r.Config, Events: r.Trace.Events()})
		}
		m := agg[r.Config]
		if m == nil {
			m = &ShootoutMech{Config: r.Config, Mechanism: r.Run.Mechanism}
			agg[r.Config] = m
			order = append(order, r.Config)
		}
		if s := r.Run.MechStats; s != nil {
			m.Stats.FastActivates += s.FastActivates
			m.Stats.Copies += s.Copies
			m.Stats.CopyCycles += s.CopyCycles
			m.Stats.Conversions += s.Conversions
			m.Stats.Reversions += s.Reversions
			m.Stats.CapacityLossRows += s.CapacityLossRows
		}
		m.Runs++
	}
	for _, label := range order {
		out.Mechs = append(out.Mechs, *agg[label])
	}
	out.Sweep.averageByConfig()
	return out, err
}
