// Fig 17 (mechanism ablation) and Fig 18 (EDP), plus the design-choice
// ablations DESIGN.md calls out (wiring, scheduler, row policy). All are
// declared as run plans and executed by the pooled executor.

package experiments

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/mcr"
	"repro/internal/runplan"
	"repro/internal/sim"
)

// MechanismCase is one bar group of Fig 17.
type MechanismCase struct {
	Name string
	Mode mcr.Mode
	Mech dram.Mechanisms
}

// MechanismCases returns the paper's four cases at mode [100%reg], K=4:
// case 1 Early-Access only, case 2 +Early-Precharge, case 3 +Fast-Refresh,
// case 4 +Refresh-Skipping (which needs M < K to differ from case 3 —
// mode [2/4x]).
func MechanismCases() ([]MechanismCase, error) {
	full, err := mcr.NewMode(4, 4, 1)
	if err != nil {
		return nil, err
	}
	skip, err := mcr.NewMode(4, 2, 1)
	if err != nil {
		return nil, err
	}
	return []MechanismCase{
		{Name: "case1 EA", Mode: full, Mech: dram.Mechanisms{EarlyAccess: true}},
		{Name: "case2 EA+EP", Mode: full, Mech: dram.Mechanisms{EarlyAccess: true, EarlyPrecharge: true}},
		{Name: "case3 EA+EP+FR", Mode: full, Mech: dram.Mechanisms{EarlyAccess: true, EarlyPrecharge: true, FastRefresh: true}},
		{Name: "case4 EA+EP+FR+RS", Mode: skip, Mech: dram.AllMechanisms()},
	}, nil
}

// figSets picks the single-core or quad-core workload sets.
func figSets(o Options, multicore bool, workloads []string) ([][]string, []string) {
	if multicore {
		return multiWorkloadSets(o)
	}
	return singleWorkloadSets(workloads)
}

// Fig17 regenerates the mechanism ablation for the single-core workloads
// (multicore=false) or the quad-core mixes (multicore=true).
func Fig17(o Options, multicore bool, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	cases, err := MechanismCases()
	if err != nil {
		return nil, err
	}
	sets, names := figSets(o, multicore, workloads)
	plan := &runplan.Plan{Name: "fig17"}
	for wi, wl := range sets {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, mc := range cases {
			cfg := baseConfig(o, multicore, wl, mc.Mode, mc.Mech, 0, isShared(wl))
			plan.AddPair(names[wi], mc.Name, cfg, base)
		}
	}
	return o.runSweep(plan)
}

// NormalizeTo returns the sweep's average execution-time reductions
// normalized to one configuration (Fig 17's bracket values are normalized
// to case 3). Configurations map to their reduction divided by the
// reference's; the reference itself maps to 1.
func NormalizeTo(s *Sweep, reference string) (map[string]float64, error) {
	ref, ok := s.Average[reference]
	if !ok {
		return nil, fmt.Errorf("experiments: no configuration %q in sweep %s", reference, s.Figure)
	}
	if ref.ExecTime == 0 {
		return nil, fmt.Errorf("experiments: reference %q has zero reduction", reference)
	}
	out := make(map[string]float64, len(s.Average))
	for cfgName, r := range s.Average {
		out[cfgName] = r.ExecTime / ref.ExecTime
	}
	return out, nil
}

// Fig18 regenerates the EDP comparison: modes [2/2x], [4/4x] and [2/4x] at
// 100%reg with all mechanisms on.
func Fig18(o Options, multicore bool, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	sets, names := figSets(o, multicore, workloads)
	var modes []mcr.Mode
	for _, km := range [][2]int{{2, 2}, {4, 4}, {4, 2}} {
		mode, err := mcr.NewMode(km[0], km[1], 1)
		if err != nil {
			return nil, err
		}
		modes = append(modes, mode)
	}
	plan := &runplan.Plan{Name: "fig18"}
	for wi, wl := range sets {
		base := baseConfig(o, multicore, wl, mcr.Off(), dram.Mechanisms{}, 0, isShared(wl))
		for _, mode := range modes {
			cfg := baseConfig(o, multicore, wl, mode, dram.AllMechanisms(), 0, isShared(wl))
			plan.AddPair(names[wi], mode.String(), cfg, base)
		}
	}
	return o.runSweep(plan)
}

// variant is a labelled mutation of the shared per-workload configuration.
type variant struct {
	label string
	mut   func(*sim.Config)
}

// variantPlan declares one plan from per-workload variants: every variant
// of a workload shares that workload's memoized MCR-off baseline.
func variantPlan(o Options, figure string, workloads []string, mech dram.Mechanisms, mode mcr.Mode, variants []variant) *runplan.Plan {
	plan := &runplan.Plan{Name: figure}
	for _, w := range workloads {
		wl := []string{w}
		base := baseConfig(o, false, wl, mcr.Off(), dram.Mechanisms{}, 0, false)
		for _, v := range variants {
			cfg := baseConfig(o, false, wl, mode, mech, 0, false)
			v.mut(&cfg)
			plan.AddPair(w, v.label, cfg, base)
		}
	}
	return plan
}

// CombinedLayout compares the paper's Sec. 4.4 combination of 2x and 4x
// MCRs against the pure modes at matched capacity cost. The combined
// layout gangs 25% of rows as 4x and 25% as 2x (capacity overhead
// 0.25*3/4 + 0.25*1/2 = 31%), between pure [4/4x/50%reg] (37.5%) and pure
// [2/2x/50%reg] (25%).
func CombinedLayout(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	layout, err := mcr.NewLayout(
		mcr.Band{K: 4, M: 4, Region: 0.25},
		mcr.Band{K: 2, M: 2, Region: 0.25},
	)
	if err != nil {
		return nil, err
	}
	pure2, err := mcr.NewMode(2, 2, 0.5)
	if err != nil {
		return nil, err
	}
	pure4, err := mcr.NewMode(4, 4, 0.5)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{"pure [2/2x/50%reg]", func(c *sim.Config) {
			c.DRAM.Mode = pure2
			c.AllocRatio = 0.2
		}},
		{"pure [4/4x/50%reg]", func(c *sim.Config) {
			c.DRAM.Mode = pure4
			c.AllocRatio = 0.2
		}},
		{"combined 4x+2x", func(c *sim.Config) {
			c.DRAM.Mode = mcr.Off()
			c.DRAM.Layout = layout
			c.AllocRatio4, c.AllocRatio2 = 0.05, 0.15
		}},
	}
	return o.runSweep(variantPlan(o, "combined", workloads, dram.AllMechanisms(), mcr.Off(), variants))
}

// TLDRAMComparison races the two low-latency philosophies the paper's
// related-work section contrasts: MCR-DRAM (capacity trade, no bank
// change) against a TL-DRAM-like near/far split (full capacity, bank-array
// area overhead). Both get a 50% fast region and no profile allocation, so
// traffic lands on the fast rows in proportion to the region size and the
// comparison isolates the timing trade-offs.
func TLDRAMComparison(o Options, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	half2, err := mcr.NewMode(2, 2, 0.5)
	if err != nil {
		return nil, err
	}
	half4, err := mcr.NewMode(4, 4, 0.5)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{"MCR [2/2x/50%reg]", func(c *sim.Config) {
			c.DRAM.Mode = half2
			c.DRAM.Mech = dram.AllMechanisms()
		}},
		{"MCR [4/4x/50%reg]", func(c *sim.Config) {
			c.DRAM.Mode = half4
			c.DRAM.Mech = dram.AllMechanisms()
		}},
		{"TL-DRAM-like 50% near", func(c *sim.Config) {
			tl := dram.DefaultTLConfig()
			c.DRAM.Mode = mcr.Off()
			c.DRAM.TL = &tl
		}},
		{"NUAT-like charge-aware", func(c *sim.Config) {
			n := dram.DefaultNUATConfig()
			c.DRAM.Mode = mcr.Off()
			c.DRAM.NUAT = &n
		}},
	}
	return o.runSweep(variantPlan(o, "tldram", workloads, dram.Mechanisms{}, mcr.Off(), variants))
}

// Ablation compares design choices on a fixed workload set under mode
// [4/4x/100%reg]. The returned sweep's configs are the variants.
type AblationKind int

// Supported ablations.
const (
	// AblationWiring compares K-to-N-1-K against K-to-K counter wiring.
	AblationWiring AblationKind = iota
	// AblationScheduler compares FR-FCFS against FCFS.
	AblationScheduler
	// AblationRowPolicy compares open-page against close-page.
	AblationRowPolicy
)

// Ablation runs one design-choice comparison over the given single-core
// workloads.
func Ablation(o Options, kind AblationKind, workloads []string) (*Sweep, error) {
	o = o.withDefaults()
	var variants []variant
	switch kind {
	case AblationWiring:
		variants = []variant{
			{"wiring K-to-N-1-K", func(c *sim.Config) { c.DRAM.Wiring = mcr.KtoN1K }},
			{"wiring K-to-K", func(c *sim.Config) { c.DRAM.Wiring = mcr.KtoK }},
		}
	case AblationScheduler:
		variants = []variant{
			{"FR-FCFS", func(c *sim.Config) { c.Ctrl.Scheduler = controller.FRFCFS }},
			{"FCFS", func(c *sim.Config) { c.Ctrl.Scheduler = controller.FCFS }},
		}
	case AblationRowPolicy:
		variants = []variant{
			{"open-page", func(c *sim.Config) { c.Ctrl.RowPolicy = controller.OpenPage }},
			{"close-page", func(c *sim.Config) { c.Ctrl.RowPolicy = controller.ClosePage }},
		}
	default:
		return nil, fmt.Errorf("experiments: unknown ablation kind %d", kind)
	}
	mode, err := mcr.NewMode(4, 4, 1)
	if err != nil {
		return nil, err
	}
	return o.runSweep(variantPlan(o, "ablation", workloads, dram.AllMechanisms(), mode, variants))
}
