// Multi-seed statistics: the synthetic workloads are stochastic, so
// headline claims deserve error bars. RepeatedComparison re-runs a
// baseline/variant pair across seeds and summarizes the reductions.

package experiments

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/mcr"
	"repro/internal/runplan"
)

// Summary is a mean-and-spread statistic over repeated runs.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// summarize computes the statistic.
func summarize(vals []float64) Summary {
	s := Summary{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		s.Mean += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean /= float64(s.N)
	for _, v := range vals {
		s.StdDev += (v - s.Mean) * (v - s.Mean)
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(s.StdDev / float64(s.N-1))
	} else {
		s.StdDev = 0
	}
	return s
}

// String renders "mean ± stddev [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f, %.2f] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// RepeatedComparison runs baseline vs the given MCR mode on one workload
// across `seeds` different seeds and returns the exec-time, read-latency
// and EDP reduction summaries.
func RepeatedComparison(o Options, workload string, mode mcr.Mode, seeds int) (exec, readlat, edp Summary, err error) {
	o = o.withDefaults()
	if seeds < 1 {
		return Summary{}, Summary{}, Summary{}, fmt.Errorf("experiments: need at least one seed, got %d", seeds)
	}
	wl := []string{workload}
	plan := &runplan.Plan{Name: "repeat"}
	for s := 0; s < seeds; s++ {
		opt := o
		opt.Seed = o.Seed + int64(s)*7919
		base := baseConfig(opt, false, wl, mcr.Off(), dram.Mechanisms{}, 0, false)
		v := baseConfig(opt, false, wl, mode, dram.AllMechanisms(), 0, false)
		plan.AddPair(workload, fmt.Sprintf("seed %d", opt.Seed), v, base)
	}
	results, err := o.execute(plan)
	if err != nil {
		return Summary{}, Summary{}, Summary{}, err
	}
	var execs, lats, edps []float64
	for _, res := range results {
		r := reduce(res.Base, res.Run)
		execs = append(execs, r.ExecTime)
		lats = append(lats, r.ReadLatency)
		edps = append(edps, r.EDP)
	}
	return summarize(execs), summarize(lats), summarize(edps), nil
}
