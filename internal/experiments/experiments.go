// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5-6): the Table 3 timing constraints, the Fig 10 SPICE
// transients, the single-core sweeps (Figs 11-13), the multi-core sweeps
// (Figs 14-16), the mechanism ablation (Fig 17) and the EDP comparison
// (Fig 18), plus the Fig 8 wiring table. cmd/reproduce and the repository
// benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mcr"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/runplan"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options controls the fidelity and execution of the sweeps.
type Options struct {
	// Insts is the per-core instruction budget (0 selects the default:
	// 1M single-core, 500k per core multi-core).
	Insts int64
	// Seed feeds every simulation; baseline and MCR runs share it.
	Seed int64
	// Jobs bounds the executor's worker pool: 0 selects GOMAXPROCS,
	// 1 forces serial execution. Results are deterministic either way.
	Jobs int
	// Progress, when non-nil, receives one instrumented event per
	// finished simulation (wall time, simulated cycles/sec, retired
	// insts/sec, pending queue). The executor serializes calls, so the
	// sink needs no locking; use runplan.LineSink for plain text.
	Progress runplan.Sink
	// Context, when non-nil, cancels in-flight simulations (Ctrl-C,
	// test timeouts); nil means context.Background().
	Context context.Context
	// MaxMixes, when positive, truncates the multi-core workload list to
	// its first MaxMixes entries (benchmarks and CI use this).
	MaxMixes int
	// KeepGoing records failures per sweep cell and keeps executing
	// instead of cancelling the plan at the first error; the joined
	// per-cell errors are returned after the surviving results.
	KeepGoing bool
	// SpecTimeout bounds each simulation attempt's wall-clock time
	// (0 = unbounded); Retries grants failed simulations additional
	// attempts, waiting RetryBackoff before the first retry and doubling
	// it on each subsequent one. See runplan.Executor.
	SpecTimeout  time.Duration
	Retries      int
	RetryBackoff time.Duration
	// Metrics attaches a fresh observability registry to every simulation
	// (snapshots land in each result's Obs field and on progress events);
	// TraceCap, when positive, attaches a ring-buffer event tracer of
	// that capacity per run (runplan.Result.Trace). See runplan.Executor.
	Metrics  bool
	TraceCap int
	// CheckpointDir, when non-empty, gives every simulation a crash-safe
	// periodic snapshot under that directory; failed attempts (panics,
	// SpecTimeout) resume from the last snapshot on retry, and an
	// interrupted sweep rerun with the same options skips already-covered
	// cycles. CheckpointEvery is the snapshot interval in memory cycles
	// (0 selects runplan.DefaultCheckpointEvery). See runplan.Executor.
	CheckpointDir   string
	CheckpointEvery int64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = 1_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Quick returns options sized for benchmarks and CI.
func Quick() Options { return Options{Insts: 150_000, Seed: 1} }

// execute runs a plan through the pooled executor configured by the
// options and returns results in spec order.
func (o Options) execute(plan *runplan.Plan) ([]runplan.Result, error) {
	ex := runplan.Executor{
		Jobs: o.Jobs, Sink: o.Progress,
		SpecTimeout: o.SpecTimeout, Retries: o.Retries,
		RetryBackoff: o.RetryBackoff, KeepGoing: o.KeepGoing,
		Metrics: o.Metrics, TraceCap: o.TraceCap,
		CheckpointDir: o.CheckpointDir, CheckpointEvery: o.CheckpointEvery,
	}
	return ex.Execute(o.Context, plan)
}

// runSweep executes a plan and folds its results into a Sweep: one point
// per spec, each reduced against its (memoized) baseline.
func (o Options) runSweep(plan *runplan.Plan) (*Sweep, error) {
	results, err := o.execute(plan)
	if err != nil && !o.KeepGoing {
		return nil, err
	}
	s := &Sweep{Figure: plan.Name}
	for _, r := range results {
		if r.Run == nil {
			continue // failed under KeepGoing; reported via err
		}
		s.Points = append(s.Points, SweepPoint{Workload: r.Workload, Config: r.Config, Reduction: reduce(r.Base, r.Run)})
		if r.Trace != nil {
			s.Traces = append(s.Traces, obs.TraceGroup{Label: r.Workload + " " + r.Config, Events: r.Trace.Events()})
		}
	}
	s.averageByConfig()
	// KeepGoing: return the partial sweep together with the joined
	// per-cell errors so callers can render what survived.
	return s, err
}

// baseConfig assembles the shared simulation configuration.
func baseConfig(o Options, multicore bool, workloads []string, mode mcr.Mode, mech dram.Mechanisms, allocRatio float64, shared bool) sim.Config {
	cfg := sim.Config{
		DRAM:            dram.DefaultConfig(mode),
		Ctrl:            controller.DefaultConfig(),
		CPU:             cpu.DefaultConfig(),
		Power:           power.Default(),
		Workloads:       workloads,
		InstsPerCore:    o.Insts,
		Seed:            o.Seed,
		AllocRatio:      allocRatio,
		SharedFootprint: shared,
		PowerDownCycles: 64,
	}
	cfg.DRAM.Mech = mech
	if multicore {
		cfg.DRAM.Geom = core.MultiCoreGeometry()
	}
	return cfg
}

// Reduction is the improvement of an MCR run over its baseline, in
// percent (positive = MCR better), for the three reported metrics.
type Reduction struct {
	ExecTime    float64
	ReadLatency float64
	EDP         float64
}

// reduce compares two results. Either side may be nil (a plan spec
// without a baseline); the reduction is then zero.
func reduce(base, m *sim.Result) Reduction {
	if base == nil || m == nil {
		return Reduction{}
	}
	pct := func(b, v float64) float64 {
		if b == 0 {
			return 0
		}
		return (b - v) / b * 100
	}
	return Reduction{
		ExecTime:    pct(float64(base.ExecCPUCycles), float64(m.ExecCPUCycles)),
		ReadLatency: pct(base.AvgReadLatencyNS, m.AvgReadLatencyNS),
		EDP:         pct(base.EDPNJs, m.EDPNJs),
	}
}

// mean averages a slice of reductions.
func mean(rs []Reduction) Reduction {
	var sum Reduction
	for _, r := range rs {
		sum.ExecTime += r.ExecTime
		sum.ReadLatency += r.ReadLatency
		sum.EDP += r.EDP
	}
	n := float64(len(rs))
	if n == 0 {
		return Reduction{}
	}
	return Reduction{ExecTime: sum.ExecTime / n, ReadLatency: sum.ReadLatency / n, EDP: sum.EDP / n}
}

// BaselineOf derives the MCR-off comparison configuration of a variant:
// same workloads, seed and geometry, MCR and its mechanisms disabled.
// Plans built from one variant set per workload therefore share one
// memoized baseline per workload.
func BaselineOf(variant sim.Config) sim.Config {
	base := variant
	base.DRAM.Mode = mcr.Off()
	base.DRAM.Layout = mcr.Layout{}
	base.DRAM.TL = nil
	base.DRAM.NUAT = nil
	base.DRAM.CROW = nil
	base.DRAM.CLR = nil
	base.DRAM.Mech = dram.Mechanisms{}
	base.AllocRatio = 0
	base.AllocRatio4, base.AllocRatio2 = 0, 0
	return base
}

// MultiCoreMixes returns the paper's 16 quad-core workloads: 14
// multiprogrammed mixes (one workload per suite, rotated deterministically)
// plus the two multithreaded workloads run as four threads.
func MultiCoreMixes() [][]string {
	suites := trace.SuiteNames()
	var mixes [][]string
	for i := 0; i < 14; i++ {
		var mix []string
		for si, suite := range suites {
			ws := trace.BySuite(suite)
			mix = append(mix, ws[(i+si*3)%len(ws)].Name)
		}
		mixes = append(mixes, mix)
	}
	mixes = append(mixes,
		[]string{"MT-fluid", "MT-fluid", "MT-fluid", "MT-fluid"},
		[]string{"MT-canneal", "MT-canneal", "MT-canneal", "MT-canneal"},
	)
	return mixes
}

// MixName labels a multi-core mix.
func MixName(i int, mix []string) string {
	if len(mix) > 0 && mix[0] == mix[len(mix)-1] && len(mix) == 4 && (mix[0] == "MT-fluid" || mix[0] == "MT-canneal") {
		return mix[0]
	}
	return fmt.Sprintf("mix%02d", i+1)
}
