// Edge-case unit tests for the reduction arithmetic: empty point sets,
// zero baseline denominators, nil results and single-config sweeps.

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestReduceZeroBaselineDenominators(t *testing.T) {
	base := &sim.Result{} // every denominator zero
	v := &sim.Result{ExecCPUCycles: 100, AvgReadLatencyNS: 50, EDPNJs: 2}
	r := reduce(base, v)
	if r != (Reduction{}) {
		t.Fatalf("zero baselines must yield zero reductions, got %+v", r)
	}
	// Mixed: only the zero-denominator metric collapses to 0.
	base2 := &sim.Result{ExecCPUCycles: 200, AvgReadLatencyNS: 0, EDPNJs: 4}
	r2 := reduce(base2, v)
	if r2.ExecTime != 50 {
		t.Fatalf("ExecTime = %g, want 50", r2.ExecTime)
	}
	if r2.ReadLatency != 0 {
		t.Fatalf("zero-latency baseline must not divide, got %g", r2.ReadLatency)
	}
	if r2.EDP != 50 {
		t.Fatalf("EDP = %g, want 50", r2.EDP)
	}
}

func TestReduceNilResults(t *testing.T) {
	full := &sim.Result{ExecCPUCycles: 100, AvgReadLatencyNS: 10, EDPNJs: 1}
	for _, c := range []struct {
		name    string
		base, v *sim.Result
	}{
		{"nil base", nil, full},
		{"nil variant", full, nil},
		{"both nil", nil, nil},
	} {
		if r := reduce(c.base, c.v); r != (Reduction{}) {
			t.Errorf("%s: want zero reduction, got %+v", c.name, r)
		}
	}
}

func TestReduceSigns(t *testing.T) {
	base := &sim.Result{ExecCPUCycles: 100, AvgReadLatencyNS: 100, EDPNJs: 100}
	worse := &sim.Result{ExecCPUCycles: 150, AvgReadLatencyNS: 50, EDPNJs: 100}
	r := reduce(base, worse)
	if r.ExecTime != -50 {
		t.Fatalf("a slower variant must reduce negatively, got %g", r.ExecTime)
	}
	if r.ReadLatency != 50 {
		t.Fatalf("a faster read path must reduce positively, got %g", r.ReadLatency)
	}
	if r.EDP != 0 {
		t.Fatalf("an equal EDP must reduce to zero, got %g", r.EDP)
	}
}

func TestMeanEdgeCases(t *testing.T) {
	if m := mean(nil); m != (Reduction{}) {
		t.Fatalf("mean of nothing must be zero, got %+v", m)
	}
	if m := mean([]Reduction{}); m != (Reduction{}) {
		t.Fatalf("mean of empty slice must be zero, got %+v", m)
	}
	one := Reduction{ExecTime: 7, ReadLatency: -3, EDP: 0.5}
	if m := mean([]Reduction{one}); m != one {
		t.Fatalf("mean of one element must be itself, got %+v", m)
	}
	m := mean([]Reduction{{ExecTime: 2}, {ExecTime: 4}})
	if m.ExecTime != 3 || m.ReadLatency != 0 || m.EDP != 0 {
		t.Fatalf("mean wrong: %+v", m)
	}
}

func TestAverageByConfigEmptySweep(t *testing.T) {
	s := &Sweep{Figure: "empty"}
	s.averageByConfig()
	if s.Average == nil {
		t.Fatal("Average must be non-nil even for an empty sweep")
	}
	if len(s.Average) != 0 {
		t.Fatalf("empty sweep must average to nothing, got %v", s.Average)
	}
	// Rendering an empty sweep must not panic and still carry the header.
	var buf bytes.Buffer
	if err := WriteSweep(&buf, s, "exec"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty sweep rendering lost its figure name")
	}
}

func TestAverageByConfigSingleConfig(t *testing.T) {
	s := &Sweep{
		Figure: "single",
		Points: []SweepPoint{
			{Workload: "a", Config: "only", Reduction: Reduction{ExecTime: 1}},
			{Workload: "b", Config: "only", Reduction: Reduction{ExecTime: 5}},
			{Workload: "c", Config: "only", Reduction: Reduction{ExecTime: 3}},
		},
	}
	s.averageByConfig()
	if len(s.Average) != 1 {
		t.Fatalf("want one config, got %v", s.Average)
	}
	if got := s.Average["only"].ExecTime; got != 3 {
		t.Fatalf("average = %g, want 3", got)
	}
	if order := SortedAverageConfigs(s); len(order) != 1 || order[0] != "only" {
		t.Fatalf("sorted configs = %v", order)
	}
}

func TestAverageByConfigPreservesDistinctConfigs(t *testing.T) {
	s := &Sweep{
		Figure: "multi",
		Points: []SweepPoint{
			{Workload: "a", Config: "x", Reduction: Reduction{ExecTime: 10}},
			{Workload: "a", Config: "y", Reduction: Reduction{ExecTime: 2}},
			{Workload: "b", Config: "x", Reduction: Reduction{ExecTime: 20}},
			{Workload: "b", Config: "y", Reduction: Reduction{ExecTime: 4}},
		},
	}
	s.averageByConfig()
	if s.Average["x"].ExecTime != 15 || s.Average["y"].ExecTime != 3 {
		t.Fatalf("averages wrong: %v", s.Average)
	}
	order := SortedAverageConfigs(s)
	if len(order) != 2 || order[0] != "x" {
		t.Fatalf("best-first order wrong: %v", order)
	}
}
