// The functional-options facade: Run is the single entry point for
// executing a simulation. Options attach cross-cutting concerns —
// observability, integrity checking, the resilience policy — to one
// invocation without mutating the caller's Config value, replacing the
// older config-transforming helpers (Simulate, SimulateContext,
// WithIntegrityCheck), which remain as thin deprecated wrappers.

package mcrdram

import (
	"context"

	"repro/internal/integrity"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ResilienceConfig enables the graceful-degradation policy: detected
// retention violations become ECC events that can quarantine clone gangs
// and step the device toward safer modes mid-run.
type ResilienceConfig = sim.ResilienceConfig

// Metrics is the cycle-domain observability registry: per-bank command
// counts, row-buffer outcomes, the per-read stall attribution and the
// read-latency histogram. Attach one with WithMetrics; the snapshot lands
// in Result.Obs.
type Metrics = obs.Registry

// Tracer is the bounded ring-buffer cycle-domain event tracer (command
// issues, MRS mode changes, quarantine/governor transitions, integrity
// violations). Attach one with WithTrace; export with its WriteChrome
// method (Chrome trace_event JSON, loadable in Perfetto).
type Tracer = obs.Tracer

// ObsSnapshot is a point-in-time copy of a Metrics registry's counters.
type ObsSnapshot = obs.Snapshot

// NewMetrics returns an empty enabled metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer returns a ring-buffer tracer keeping the most recent capacity
// events (capacity <= 0 selects the default, obs.DefaultTraceCap).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// RunOption customizes one Run invocation. Options apply to a private
// copy of the configuration, so the caller's Config is never mutated and
// may be reused across runs.
type RunOption func(*Config)

// WithMetrics attaches a metrics registry to the run's hot path. The
// registry may be shared across concurrent runs (all increments are
// atomic); pass a fresh one per run for per-run snapshots.
func WithMetrics(reg *Metrics) RunOption {
	return func(c *Config) { c.Metrics = reg }
}

// WithTrace attaches a cycle-domain event tracer to the run.
func WithTrace(tr *Tracer) RunOption {
	return func(c *Config) { c.Trace = tr }
}

// WithIntegrity attaches the retention-safety checker with its default
// (normal-temperature) configuration; violations appear in
// Result.Integrity (empty slice = verified safe).
func WithIntegrity() RunOption {
	return func(c *Config) {
		ic := integrity.DefaultConfig()
		c.Integrity = &ic
	}
}

// WithIntegrityConfig attaches the retention-safety checker with an
// explicit configuration.
func WithIntegrityConfig(ic IntegrityConfig) RunOption {
	return func(c *Config) { c.Integrity = &ic }
}

// WithResilience enables the graceful-degradation policy (implies the
// integrity checker); stats land in Result.Resilience.
func WithResilience(rc ResilienceConfig) RunOption {
	return func(c *Config) { c.Resilience = &rc }
}

// CheckpointConfig configures crash-safe periodic snapshots of the full
// simulator state and resuming from them.
type CheckpointConfig = sim.CheckpointConfig

// WithCheckpoint makes the run write an atomic snapshot of the complete
// simulator state to path every everyNCycles memory cycles, and resume
// from an existing snapshot at path when one is present (a missing or
// unreadable snapshot starts fresh). The file is removed when the run
// completes, so a later identical invocation starts over instead of
// replaying a finished run. A restored run produces a Result identical
// to the uninterrupted one. Use WithCheckpointConfig for strict-resume
// or notification hooks.
func WithCheckpoint(path string, everyNCycles int64) RunOption {
	return func(c *Config) {
		c.Checkpoint = &sim.CheckpointConfig{Path: path, EveryNCycles: everyNCycles, Resume: true}
	}
}

// WithCheckpointConfig attaches a fully specified checkpoint policy.
func WithCheckpointConfig(ck CheckpointConfig) RunOption {
	return func(c *Config) { c.Checkpoint = &ck }
}

// Run executes a configuration to completion, aborting early (with the
// context's error) when ctx is cancelled. A nil ctx means
// context.Background().
func Run(ctx context.Context, cfg Config, opts ...RunOption) (*Result, error) {
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return sim.RunContext(ctx, cfg)
}
