// The functional-options facade: Run is the single entry point for
// executing a simulation. Options attach cross-cutting concerns —
// observability, integrity checking, the resilience policy, mechanism
// and engine selection — to one invocation without mutating the
// caller's Config value. Options can fail (an unknown mechanism name,
// for instance); Run surfaces the first failure before any simulation
// state is built.

package mcrdram

import (
	"context"
	"fmt"

	"repro/internal/dram"
	"repro/internal/integrity"
	"repro/internal/mcr"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ResilienceConfig enables the graceful-degradation policy: detected
// retention violations become ECC events that can quarantine clone gangs
// and step the device toward safer modes mid-run.
type ResilienceConfig = sim.ResilienceConfig

// Metrics is the cycle-domain observability registry: per-bank command
// counts, row-buffer outcomes, the per-read stall attribution and the
// read-latency histogram. Attach one with WithMetrics; the snapshot lands
// in Result.Obs.
type Metrics = obs.Registry

// Tracer is the bounded ring-buffer cycle-domain event tracer (command
// issues, MRS mode changes, quarantine/governor transitions, integrity
// violations). Attach one with WithTrace; export with its WriteChrome
// method (Chrome trace_event JSON, loadable in Perfetto).
type Tracer = obs.Tracer

// ObsSnapshot is a point-in-time copy of a Metrics registry's counters.
type ObsSnapshot = obs.Snapshot

// NewMetrics returns an empty enabled metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer returns a ring-buffer tracer keeping the most recent capacity
// events (capacity <= 0 selects the default, obs.DefaultTraceCap).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// RunOption customizes one Run invocation. Options apply to a private
// copy of the configuration, so the caller's Config is never mutated and
// may be reused across runs. An option returning an error aborts Run
// before the simulation starts.
type RunOption func(*Config) error

// WithMetrics attaches a metrics registry to the run's hot path. The
// registry may be shared across concurrent runs (all increments are
// atomic); pass a fresh one per run for per-run snapshots.
func WithMetrics(reg *Metrics) RunOption {
	return func(c *Config) error { c.Metrics = reg; return nil }
}

// WithTrace attaches a cycle-domain event tracer to the run.
func WithTrace(tr *Tracer) RunOption {
	return func(c *Config) error { c.Trace = tr; return nil }
}

// WithIntegrity attaches the retention-safety checker with its default
// (normal-temperature) configuration; violations appear in
// Result.Integrity (empty slice = verified safe).
func WithIntegrity() RunOption {
	return func(c *Config) error {
		ic := integrity.DefaultConfig()
		c.Integrity = &ic
		return nil
	}
}

// WithIntegrityConfig attaches the retention-safety checker with an
// explicit configuration.
func WithIntegrityConfig(ic IntegrityConfig) RunOption {
	return func(c *Config) error { c.Integrity = &ic; return nil }
}

// WithResilience enables the graceful-degradation policy (implies the
// integrity checker); stats land in Result.Resilience.
func WithResilience(rc ResilienceConfig) RunOption {
	return func(c *Config) error { c.Resilience = &rc; return nil }
}

// Engine selects the run loop's cycle-advancement strategy; see the
// package sim documentation for the skip algorithm.
type Engine = sim.Engine

// Supported engines. EventDriven (the default) steps active cycles and
// jumps over provably inert spans; Stepped forces the classic
// cycle-by-cycle reference loop. Both produce byte-identical Results.
const (
	EventDriven = sim.EventDriven
	Stepped     = sim.Stepped
)

// WithEngine selects the run loop engine for this invocation.
func WithEngine(e Engine) RunOption {
	return func(c *Config) error { c.Engine = e; return nil }
}

// MechanismNames lists the names WithMechanism accepts, in the paper's
// presentation order.
func MechanismNames() []string { return []string{"mcr", "tldram", "nuat", "crow", "clr"} }

// WithMechanism switches the configuration to the named latency-mechanism
// backend using its representative default parameters: "mcr" (the paper's
// device; keeps the configuration's Mode/Layout), "tldram", "nuat",
// "crow" or "clr". Any other name fails with an error wrapping
// ErrUnknownMechanism. For non-default backend parameters, set the
// Config.DRAM fields directly instead.
func WithMechanism(name string) RunOption {
	return func(c *Config) error {
		c.DRAM.TL, c.DRAM.NUAT, c.DRAM.CROW, c.DRAM.CLR = nil, nil, nil, nil
		switch name {
		case "mcr":
			// Keep Mode/Layout: "mcr" with Mode off is conventional DRAM.
		case "tldram":
			tl := dram.DefaultTLConfig()
			c.DRAM.Mode, c.DRAM.Layout = mcr.Off(), mcr.Layout{}
			c.DRAM.TL = &tl
		case "nuat":
			n := dram.DefaultNUATConfig()
			c.DRAM.Mode, c.DRAM.Layout = mcr.Off(), mcr.Layout{}
			c.DRAM.NUAT = &n
		case "crow":
			cr := dram.DefaultCROWConfig()
			c.DRAM.Mode, c.DRAM.Layout = mcr.Off(), mcr.Layout{}
			c.DRAM.CROW = &cr
		case "clr":
			cl := dram.DefaultCLRConfig()
			c.DRAM.Mode, c.DRAM.Layout = mcr.Off(), mcr.Layout{}
			c.DRAM.CLR = &cl
		default:
			return fmt.Errorf("mcrdram: %w: %q (want one of mcr, tldram, nuat, crow, clr)",
				mech.ErrUnknownMechanism, name)
		}
		return nil
	}
}

// ErrUnknownMechanism marks a WithMechanism name no backend registers;
// test with errors.Is.
var ErrUnknownMechanism = mech.ErrUnknownMechanism

// CheckpointConfig configures crash-safe periodic snapshots of the full
// simulator state and resuming from them.
type CheckpointConfig = sim.CheckpointConfig

// WithCheckpoint makes the run write an atomic snapshot of the complete
// simulator state to path every everyNCycles memory cycles, and resume
// from an existing snapshot at path when one is present (a missing or
// unreadable snapshot starts fresh). The file is removed when the run
// completes, so a later identical invocation starts over instead of
// replaying a finished run. A restored run produces a Result identical
// to the uninterrupted one — even when the engines differ across the
// interruption, since snapshots carry no engine state. Use
// WithCheckpointConfig for strict-resume or notification hooks.
func WithCheckpoint(path string, everyNCycles int64) RunOption {
	return func(c *Config) error {
		c.Checkpoint = &sim.CheckpointConfig{Path: path, EveryNCycles: everyNCycles, Resume: true}
		return nil
	}
}

// WithCheckpointConfig attaches a fully specified checkpoint policy.
func WithCheckpointConfig(ck CheckpointConfig) RunOption {
	return func(c *Config) error { c.Checkpoint = &ck; return nil }
}

// Run executes a configuration to completion, aborting early (with the
// context's error) when ctx is cancelled. A nil ctx means
// context.Background().
func Run(ctx context.Context, cfg Config, opts ...RunOption) (*Result, error) {
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	return sim.RunContext(ctx, cfg)
}
