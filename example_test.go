package mcrdram_test

import (
	"context"
	"fmt"

	mcrdram "repro"
)

// ExampleNewMode shows the paper's [M/Kx/L%reg] notation.
func ExampleNewMode() {
	mode, err := mcrdram.NewMode(4, 2, 0.75)
	if err != nil {
		panic(err)
	}
	fmt.Println(mode)
	fmt.Println("rows per MCR:", mode.K)
	fmt.Println("refreshes kept per 64 ms:", mode.M)
	fmt.Println("worst-case refresh interval:", mode.RefreshIntervalMs(), "ms")
	// Output:
	// mode [2/4x/75%reg]
	// rows per MCR: 4
	// refreshes kept per 64 ms: 2
	// worst-case refresh interval: 32 ms
}

// ExampleTable3 prints the canonical MCR timing constraints.
func ExampleTable3() {
	for _, t := range mcrdram.Table3() {
		fmt.Printf("%d/%dx: tRCD %.2f ns, tRAS %.2f ns\n", t.M, t.K, t.TRCDNS, t.TRASNS)
	}
	// Output:
	// 1/1x: tRCD 13.75 ns, tRAS 35.00 ns
	// 1/2x: tRCD 9.94 ns, tRAS 37.52 ns
	// 2/2x: tRCD 9.94 ns, tRAS 21.46 ns
	// 1/4x: tRCD 6.90 ns, tRAS 46.51 ns
	// 2/4x: tRCD 6.90 ns, tRAS 22.78 ns
	// 4/4x: tRCD 6.90 ns, tRAS 20.00 ns
}

// ExampleMaxRefreshInterval reproduces the paper's Fig 8 wiring numbers.
func ExampleMaxRefreshInterval() {
	for _, k := range []int{2, 4} {
		fmt.Printf("%dx: K-to-K %.0f ms, K-to-N-1-K %.0f ms\n",
			k,
			mcrdram.MaxRefreshInterval(mcrdram.WiringKtoK, 3, k, 64),
			mcrdram.MaxRefreshInterval(mcrdram.WiringKtoN1K, 3, k, 64))
	}
	// Output:
	// 2x: K-to-K 56 ms, K-to-N-1-K 32 ms
	// 4x: K-to-K 40 ms, K-to-N-1-K 16 ms
}

// ExampleRun runs a tiny simulation and reports whether MCR-DRAM beat
// the conventional baseline.
func ExampleRun() {
	mode, _ := mcrdram.NewMode(4, 4, 1.0)

	base := mcrdram.SingleCore("tigr", mcrdram.ModeOff())
	base.InstsPerCore = 50_000
	bres, err := mcrdram.Run(context.Background(), base)
	if err != nil {
		panic(err)
	}

	cfg := mcrdram.SingleCore("tigr", mode)
	cfg.InstsPerCore = 50_000
	res, err := mcrdram.Run(context.Background(), cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("MCR-DRAM faster:", res.ExecCPUCycles < bres.ExecCPUCycles)
	fmt.Println("served from MCRs:", res.MCRRequestFraction == 1.0)
	// Output:
	// MCR-DRAM faster: true
	// served from MCRs: true
}

// ExampleNewLayout builds the paper's Sec. 4.4 combined 2x+4x layout.
func ExampleNewLayout() {
	layout, err := mcrdram.NewLayout(
		mcrdram.Band{K: 4, M: 4, Region: 0.25},
		mcrdram.Band{K: 2, M: 2, Region: 0.25},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(layout)
	// Output:
	// layout [4/4x/25%+2/2x/25%]
}
