// mcrlint runs the repository's domain-invariant static checks (see
// internal/analysis) over module packages.
//
// Usage:
//
//	mcrlint [-json] [-list] [-list-checks] [-checks names] [-baseline file] [-write-baseline file] [packages]
//
// Packages are directories relative to the current module, with "./..."
// expanding to every package in the module (the usual invocation is
// "mcrlint ./..."). With no arguments it analyzes the whole module.
//
// -checks selects a comma-separated subset of the registered checks
// (default: all). An entry ending in a colon selects by analysis
// substrate instead of by name: "flow:" runs every flow-substrate check,
// "shape:,interval:" the structural-invariant layer. An unknown name is
// an invocation error (exit 2) with a "did you mean" suggestion — never
// a silently empty run; an unknown substrate lists the registered ones.
// -list prints the registered check names and docs and exits;
// -list-checks additionally shows each check's substrate.
//
// With -baseline, findings recorded in the baseline file are demoted to
// stderr warnings and do not affect the exit status; only findings
// absent from the baseline fail the run. Baseline entries are keyed by
// (check, module-relative file, message) — line numbers are deliberately
// left out so unrelated edits shifting a finding by a few lines do not
// invalidate the baseline. Baseline entries for checks that were run but
// no longer report (not even in allow-suppressed form) are warned about
// as stale. -write-baseline records the current findings to the named
// file and exits 0.
//
// Exit status is 0 when all checks pass, 1 when any non-baselined
// diagnostic is reported, and 2 when analysis itself fails (parse or
// type error, bad invocation). Individual findings can be suppressed
// with a "//mcrlint:allow <check> [justification]" comment on or
// directly above the offending line.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	listShort := flag.Bool("list", false, "list registered checks and exit")
	listLong := flag.Bool("list-checks", false, "list registered checks with their substrate and exit")
	baseline := flag.String("baseline", "", "demote findings recorded in this baseline file to warnings")
	writeBaseline := flag.String("write-baseline", "", "record current findings to this file and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mcrlint [-json] [-list] [-list-checks] [-checks names] [-baseline file] [-write-baseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listShort || *listLong {
		fmt.Print(listChecks(*listLong))
		return
	}
	os.Exit(run(flag.Args(), *jsonOut, *checks, *baseline, *writeBaseline))
}

func run(args []string, jsonOut bool, checks, baseline, writeBaseline string) int {
	analyzers, err := selectChecks(checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcrlint:", err)
		return 2
	}
	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcrlint:", err)
		return 2
	}
	dirs, err := expandPackages(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcrlint:", err)
		return 2
	}

	loader := analysis.NewLoader(root, module)
	var diags, suppressed []analysis.Diagnostic
	failed := false
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcrlint:", err)
			return 2
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(dir, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcrlint:", err)
			failed = true
			continue
		}
		kept, sup := analysis.RunChecksCollect(pkg, analyzers)
		diags = append(diags, kept...)
		suppressed = append(suppressed, sup...)
	}
	// The same file can be analyzed under more than one package variant;
	// collapse exact duplicates and fix a deterministic output order
	// across all packages.
	diags = analysis.Dedupe(diags)

	if writeBaseline != "" {
		if err := saveBaseline(writeBaseline, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "mcrlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "mcrlint: wrote %d baseline entr%s to %s\n",
			len(diags), plural(len(diags), "y", "ies"), writeBaseline)
		return 0
	}
	if baseline != "" {
		known, err := loadBaseline(baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcrlint:", err)
			return 2
		}
		// A baseline entry still counts as present when its finding was
		// allow-suppressed; only entries for checks that ran and truly
		// reported nothing are stale.
		seen := map[string]bool{}
		for _, d := range diags {
			seen[baselineKey(root, d)] = true
		}
		for _, d := range suppressed {
			seen[baselineKey(root, d)] = true
		}
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, key := range staleEntries(known, seen, ran) {
			fmt.Fprintf(os.Stderr, "mcrlint: stale baseline entry (no longer reported): %s\n", key)
		}
		kept := diags[:0]
		for _, d := range diags {
			if known[baselineKey(root, d)] {
				fmt.Fprintf(os.Stderr, "mcrlint: baselined: %s\n", d)
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "mcrlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case failed:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

// listChecks renders the check registry; withSubstrate adds the
// substrate column (-list-checks).
func listChecks(withSubstrate bool) string {
	var sb strings.Builder
	for _, a := range analysis.All() {
		if withSubstrate {
			fmt.Fprintf(&sb, "%-14s %-9s %s\n", a.Name, a.Substrate, a.Doc)
		} else {
			fmt.Fprintf(&sb, "%-14s %s\n", a.Name, a.Doc)
		}
	}
	return sb.String()
}

// selectChecks resolves a comma-separated -checks value to analyzers.
// The empty spec selects every registered check; an entry ending in a
// colon ("flow:") selects every check on that substrate; an unknown name
// is an error carrying a "did you mean" suggestion, so a typo can never
// run an empty check set and exit 0 vacuously.
func selectChecks(spec string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var sel []*analysis.Analyzer
	seen := map[string]bool{}
	add := func(a *analysis.Analyzer) {
		if !seen[a.Name] {
			seen[a.Name] = true
			sel = append(sel, a)
		}
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if sub, isSubstrate := strings.CutSuffix(name, ":"); isSubstrate {
			matched := false
			for _, a := range all {
				if a.Substrate == sub {
					add(a)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("unknown substrate %q; registered substrates: %s",
					sub, strings.Join(substrates(all), ", "))
			}
			continue
		}
		a, ok := byName[name]
		if !ok {
			msg := fmt.Sprintf("unknown check %q", name)
			if s := nearestCheck(name, all); s != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", s)
			}
			return nil, fmt.Errorf("%s; run mcrlint -list for the registered checks", msg)
		}
		add(a)
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-checks %q selects no checks", spec)
	}
	return sel, nil
}

// substrates lists the distinct substrate names, sorted.
func substrates(all []*analysis.Analyzer) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range all {
		if !seen[a.Substrate] {
			seen[a.Substrate] = true
			out = append(out, a.Substrate)
		}
	}
	sort.Strings(out)
	return out
}

// nearestCheck suggests the registered check closest to name, when the
// edit distance is small enough to look like a typo.
func nearestCheck(name string, all []*analysis.Analyzer) string {
	best, bestDist := "", 3 // suggest within edit distance 2
	for _, a := range all {
		if d := editDistance(name, a.Name); d < bestDist {
			best, bestDist = a.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// staleEntries returns the baseline keys (sorted) that belong to a
// check that ran this invocation yet matched no finding, kept or
// allow-suppressed.
func staleEntries(known, seen, ran map[string]bool) []string {
	var stale []string
	for key := range known {
		check, _, _ := strings.Cut(key, "|")
		if ran[check] && !seen[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return stale
}

// baselineKey is the identity of a finding for baseline matching:
// check, module-relative file path, and message. Line and column are
// deliberately excluded so edits elsewhere in a file do not invalidate
// the baseline.
func baselineKey(root string, d analysis.Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return d.Check + "|" + file + "|" + d.Message
}

// baselineEntry is one recorded finding in a baseline file.
type baselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// loadBaseline reads a baseline file into a key set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	known := make(map[string]bool, len(entries))
	for _, e := range entries {
		known[e.Check+"|"+e.File+"|"+e.Message] = true
	}
	return known, nil
}

// saveBaseline records the findings as a baseline file.
func saveBaseline(path, root string, diags []analysis.Diagnostic) error {
	entries := []baselineEntry{}
	seen := map[string]bool{}
	for _, d := range diags {
		key := baselineKey(root, d)
		if seen[key] {
			continue
		}
		seen[key] = true
		parts := strings.SplitN(key, "|", 3)
		entries = append(entries, baselineEntry{Check: parts[0], File: parts[1], Message: parts[2]})
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// findModule walks upward from the working directory to the enclosing
// go.mod and returns its directory and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		mod := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(mod); statErr == nil {
			module, err := modulePath(mod)
			if err != nil {
				return "", "", err
			}
			return dir, module, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// modulePath reads the module directive from a go.mod file.
func modulePath(file string) (string, error) {
	f, err := os.Open(file)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", file)
}

// expandPackages resolves the argument list to package directories. The
// trailing "..." wildcard matches every package at or below the prefix.
func expandPackages(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, arg := range args {
		base, recursive := strings.CutSuffix(arg, "...")
		base = filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(base, "/")))
		if recursive {
			sub, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arg, err)
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		if !seen[base] {
			seen[base] = true
			dirs = append(dirs, base)
		}
	}
	return dirs, nil
}
