package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// captureStderr runs f with os.Stderr redirected and returns what it
// wrote.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSelectChecksSubset(t *testing.T) {
	sel, err := selectChecks(" hotalloc, hotlock ,hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "hotalloc" || sel[1].Name != "hotlock" {
		t.Fatalf("subset selection wrong: %v", sel)
	}
}

func TestSelectChecksEmptySelectsAll(t *testing.T) {
	sel, err := selectChecks("  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) < 11 {
		t.Fatalf("empty spec selected %d checks, want all", len(sel))
	}
}

func TestSelectChecksUnknownSuggests(t *testing.T) {
	_, err := selectChecks("hotaloc")
	if err == nil {
		t.Fatal("unknown check accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown check "hotaloc"`) || !strings.Contains(msg, `did you mean "hotalloc"`) {
		t.Fatalf("error missing the did-you-mean suggestion: %s", msg)
	}
}

func TestSelectChecksNoSuggestionWhenFar(t *testing.T) {
	_, err := selectChecks("zzzzzz")
	if err == nil {
		t.Fatal("unknown check accepted")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("nonsense name got a suggestion: %s", err)
	}
}

func TestSelectChecksAllSeparators(t *testing.T) {
	if _, err := selectChecks(",,,"); err == nil {
		t.Fatal("spec selecting nothing accepted")
	}
}

func TestSelectChecksSubstratePrefix(t *testing.T) {
	sel, err := selectChecks("flow:")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("flow: selected no checks")
	}
	for _, a := range sel {
		if a.Substrate != "flow" {
			t.Fatalf("flow: selected %s (substrate %s)", a.Name, a.Substrate)
		}
	}
}

func TestSelectChecksSubstrateMixedWithNames(t *testing.T) {
	sel, err := selectChecks("shape:,timingrange,snapshotcover")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range sel {
		if names[a.Name] {
			t.Fatalf("check %s selected twice", a.Name)
		}
		names[a.Name] = true
	}
	// snapshotcover rides the shape: prefix; enumswitch comes with it;
	// timingrange is named explicitly.
	for _, want := range []string{"snapshotcover", "enumswitch", "timingrange"} {
		if !names[want] {
			t.Fatalf("expected %s in selection, got %v", want, names)
		}
	}
}

func TestSelectChecksUnknownSubstrate(t *testing.T) {
	_, err := selectChecks("flo:")
	if err == nil {
		t.Fatal("unknown substrate accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown substrate "flo"`) || !strings.Contains(msg, "shape") {
		t.Fatalf("error missing the registered-substrate listing: %s", msg)
	}
}

func TestListChecksShowsSubstrates(t *testing.T) {
	long := listChecks(true)
	for _, want := range []string{"snapshotcover", "timingrange", "enumswitch", "shape", "interval", "flow", "heap", "syntax"} {
		if !strings.Contains(long, want) {
			t.Fatalf("-list-checks output missing %q:\n%s", want, long)
		}
	}
	if short := listChecks(false); strings.Contains(short, "interval ") {
		t.Fatalf("-list output unexpectedly carries a substrate column:\n%s", short)
	}
}

func TestRunUnknownCheckExitsTwo(t *testing.T) {
	var code int
	stderr := captureStderr(t, func() {
		code = run([]string{"./internal/obs"}, false, "hotaloc", "", "")
	})
	if code != 2 {
		t.Fatalf("unknown -checks name exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "did you mean") {
		t.Fatalf("stderr missing suggestion:\n%s", stderr)
	}
}

func TestEditDistance(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"hotalloc", "hotalloc", 0},
		{"hotaloc", "hotalloc", 1},
		{"hotlock", "hotbox", 3},
		{"abc", "", 3},
	} {
		if got := editDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestStaleEntriesScopedToRanChecks(t *testing.T) {
	known := map[string]bool{
		"hotalloc|a.go|gone":       true,
		"hotalloc|a.go|still here": true,
		"detflow|b.go|not run":     true,
	}
	seen := map[string]bool{"hotalloc|a.go|still here": true}
	ran := map[string]bool{"hotalloc": true}
	got := staleEntries(known, seen, ran)
	if len(got) != 1 || got[0] != "hotalloc|a.go|gone" {
		t.Fatalf("staleEntries = %v, want only the reported-by-nothing hotalloc entry", got)
	}
}

// TestAllowSuppressedFindingIsNotStale pins the allow × baseline
// interplay end to end on the real module: the completions append in
// EnqueueRead carries an //mcrlint:allow hotalloc, so a baseline entry
// recording that finding must count as present — not warned stale —
// while a baseline entry matching nothing must be.
func TestAllowSuppressedFindingIsNotStale(t *testing.T) {
	suppressedMsg := "append may grow its backing array, reachable from hot-path root controller.(*Controller).EnqueueRead; the per-cycle hot path must stay allocation-free"
	entries := []baselineEntry{
		{Check: "hotalloc", File: "internal/controller/controller.go", Message: suppressedMsg},
		{Check: "hotalloc", File: "internal/controller/controller.go", Message: "finding that no longer exists"},
	}
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	stderr := captureStderr(t, func() {
		code = run([]string{"./internal/controller"}, false, "hotalloc", base, "")
	})
	if code != 0 {
		t.Fatalf("run exited %d:\n%s", code, stderr)
	}
	if strings.Contains(stderr, suppressedMsg) {
		t.Errorf("allow-suppressed finding warned as stale:\n%s", stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") ||
		!strings.Contains(stderr, "finding that no longer exists") {
		t.Errorf("genuinely stale entry not warned:\n%s", stderr)
	}
}

// fullRepoBudget bounds one run of every registered check over the whole
// module (the CI invocation). BenchmarkMcrlintFullRepo measures ~3.6s on
// the reference machine (recorded in EXPERIMENTS.md) with all fourteen
// checks — syntax, flow, heap, shape and interval substrates; the budget
// is an order of magnitude above that, so only a complexity regression
// in the analyzers — not runner jitter — can trip it.
const fullRepoBudget = 30 * time.Second

func TestMcrlintFullRepoWallTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo analysis skipped in -short mode")
	}
	start := time.Now()
	var code int
	stderr := captureStderr(t, func() {
		code = run([]string{"./..."}, false, "", "", "")
	})
	if code != 0 {
		t.Fatalf("mcrlint over the clean tree exited %d:\n%s", code, stderr)
	}
	if elapsed := time.Since(start); elapsed > fullRepoBudget {
		t.Fatalf("full-repo analysis took %v, over the %v budget", elapsed, fullRepoBudget)
	}
}

// BenchmarkMcrlintFullRepo pins the analyzer's wall time over the whole
// module — the number EXPERIMENTS.md records and fullRepoBudget guards.
func BenchmarkMcrlintFullRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if code := run([]string{"./..."}, false, "", "", ""); code != 0 {
			b.Fatalf("mcrlint exited %d", code)
		}
	}
}
