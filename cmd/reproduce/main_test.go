package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestValidateMetric(t *testing.T) {
	for _, ok := range []string{"exec", "readlat", "edp"} {
		if err := validateMetric(ok); err != nil {
			t.Errorf("metric %q rejected: %v", ok, err)
		}
	}
	err := validateMetric("latency")
	if err == nil {
		t.Fatal("bad metric accepted")
	}
	for _, want := range []string{"exec", "readlat", "edp", "latency"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error must list %q: %v", want, err)
		}
	}
}

func TestValidateFig(t *testing.T) {
	for _, ok := range []int{3, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18} {
		if err := validateFig(ok); err != nil {
			t.Errorf("fig %d rejected: %v", ok, err)
		}
	}
	for _, bad := range []int{0, 1, 2, 9, 19, -3} {
		err := validateFig(bad)
		if err == nil {
			t.Errorf("fig %d accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "11") {
			t.Errorf("error must list the valid figures: %v", err)
		}
	}
}

func TestValidateExtra(t *testing.T) {
	for _, ok := range []string{"combined", "tldram", "shootout", "wiring", "scheduler", "rowpolicy", "repeat"} {
		if err := validateExtra(ok); err != nil {
			t.Errorf("extra %q rejected: %v", ok, err)
		}
	}
	err := validateExtra("nope")
	if err == nil {
		t.Fatal("bad extra accepted")
	}
	if !strings.Contains(err.Error(), "tldram") || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error must name the input and the valid studies: %v", err)
	}
}

func TestRunRejectsUnknownFig(t *testing.T) {
	// run() is only reached through validateFig, but keep its own guard.
	if err := run(99, experiments.Quick(), "exec"); err == nil {
		t.Fatal("unknown figure must error")
	}
}
