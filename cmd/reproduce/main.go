// Command reproduce regenerates the paper's tables and figures.
//
// Usage:
//
//	reproduce -fig 11              # one figure (8, 10..18) or table (3)
//	reproduce -all                 # everything
//	reproduce -all -jobs 8         # pooled execution, 8 simulations in flight
//	reproduce -fig 11 -insts 2000000 -metric readlat
//	reproduce -all -checkpoint-dir /tmp/ckpt   # crash-safe resumable sweep
//
// Sweeps run through the internal/runplan executor: independent cells
// execute on a bounded worker pool (-jobs, default GOMAXPROCS) with the
// per-workload baselines memoized, and Ctrl-C cancels in-flight
// simulations cleanly. With -checkpoint-dir, every simulation
// periodically snapshots its full state there; a retried attempt or a
// rerun after Ctrl-C resumes from the last snapshot instead of
// restarting from cycle zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/mcr"
	"repro/internal/obs"
	"repro/internal/runplan"
	"repro/internal/trace"
)

// collectedTraces accumulates every sweep's event-trace groups when
// -trace-out is set; main writes them as one Chrome trace_event file.
var collectedTraces []obs.TraceGroup

// collectTraces folds one sweep's traces into the collector.
func collectTraces(s *experiments.Sweep) { collectedTraces = append(collectedTraces, s.Traces...) }

// validFigs are the reproducible figure/table numbers.
var validFigs = []int{3, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18}

// validMetrics are the sweep metrics WriteSweep understands.
var validMetrics = []string{"exec", "readlat", "edp"}

// validExtras are the beyond-the-paper studies.
var validExtras = []string{"combined", "tldram", "shootout", "wiring", "scheduler", "rowpolicy", "repeat", "resilience"}

// validateMetric rejects unknown -metric values with the valid choices.
func validateMetric(m string) error {
	for _, v := range validMetrics {
		if m == v {
			return nil
		}
	}
	return fmt.Errorf("unknown metric %q (valid: %s)", m, strings.Join(validMetrics, ", "))
}

// validateFig rejects unknown -fig values with the valid choices.
func validateFig(fig int) error {
	for _, v := range validFigs {
		if fig == v {
			return nil
		}
	}
	var opts []string
	for _, v := range validFigs {
		opts = append(opts, fmt.Sprint(v))
	}
	return fmt.Errorf("unknown figure/table %d (valid: %s)", fig, strings.Join(opts, ", "))
}

// validateExtra rejects unknown -extra values with the valid choices.
func validateExtra(name string) error {
	for _, v := range validExtras {
		if name == v {
			return nil
		}
	}
	return fmt.Errorf("unknown extra study %q (valid: %s)", name, strings.Join(validExtras, ", "))
}

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure/table number: 3 (Table 3), 8, 10, 11, 12, 13, 14, 15, 16, 17, 18")
		all     = flag.Bool("all", false, "regenerate everything")
		extra   = flag.String("extra", "", `beyond-the-paper study: "combined", "tldram", "shootout", "wiring", "scheduler", "rowpolicy", "repeat" or "resilience"`)
		insts   = flag.Int64("insts", 0, "instructions per core (0 = default)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		seeds   = flag.Int("seeds", 5, "seeds for -extra repeat")
		jobs    = flag.Int("jobs", 0, "simulations in flight (0 = GOMAXPROCS, 1 = serial)")
		metric  = flag.String("metric", "exec", "sweep metric: exec, readlat or edp")
		verbose = flag.Bool("v", false, "print per-simulation progress with throughput stats")

		keepGoing   = flag.Bool("keep-going", false, "record per-cell failures and finish the sweep instead of stopping at the first error")
		retries     = flag.Int("retries", 0, "additional attempts for a failed simulation")
		specTimeout = flag.Duration("spec-timeout", 0, "wall-clock bound per simulation attempt (0 = unbounded)")

		ckptDir   = flag.String("checkpoint-dir", "", "write crash-safe periodic snapshots per simulation under this directory; retries and reruns resume from them")
		ckptEvery = flag.Int64("checkpoint-every", 0, "snapshot interval in memory cycles (0 = the executor default; needs -checkpoint-dir)")

		metrics   = flag.Bool("metrics", false, "attach an observability registry per simulation (adds an obs summary to -v progress lines)")
		traceOut  = flag.String("trace-out", "", "write every variant run's command/policy events as one Chrome trace_event JSON file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060")
	)
	flag.Parse()

	if err := validateMetric(*metric); err != nil {
		fatal(err)
	}
	if *ckptEvery != 0 && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "reproduce: -checkpoint-every needs -checkpoint-dir")
		flag.Usage()
		os.Exit(2)
	}
	if *ckptEvery < 0 {
		fmt.Fprintf(os.Stderr, "reproduce: -checkpoint-every must be positive, got %d\n", *ckptEvery)
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: pprof:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := experiments.Options{
		Insts: *insts, Seed: *seed, Jobs: *jobs, Context: ctx,
		KeepGoing: *keepGoing, Retries: *retries, SpecTimeout: *specTimeout,
		RetryBackoff:  100 * time.Millisecond,
		Metrics:       *metrics,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
	}
	if *traceOut != "" {
		opt.TraceCap = obs.DefaultTraceCap
	}
	if *verbose {
		if *metrics {
			opt.Progress = runplan.ObsLineSink(os.Stderr)
		} else {
			opt.Progress = runplan.LineSink(os.Stderr)
		}
	}

	if *extra != "" {
		if err := validateExtra(*extra); err != nil {
			fatal(err)
		}
		if err := runExtra(*extra, opt, *metric, *seeds); err != nil {
			fatal(fmt.Errorf("extra %s: %w", *extra, err))
		}
		writeTraces(*traceOut)
		return
	}

	figs := validFigs
	if !*all {
		if *fig == 0 {
			fmt.Fprintln(os.Stderr, "reproduce: pass -fig N, -extra NAME or -all")
			os.Exit(2)
		}
		if err := validateFig(*fig); err != nil {
			fatal(err)
		}
		figs = []int{*fig}
	}
	for _, f := range figs {
		if err := run(f, opt, *metric); err != nil {
			fatal(fmt.Errorf("fig %d: %w", f, err))
		}
		fmt.Println()
	}
	writeTraces(*traceOut)
}

// writeTraces exports the collected sweep traces as one Chrome
// trace_event file (one trace-viewer process per sweep cell).
func writeTraces(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obs.WriteChromeGroups(f, collectedTraces); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	n := 0
	for _, g := range collectedTraces {
		n += len(g.Events)
	}
	fmt.Fprintf(os.Stderr, "reproduce: wrote %d trace events (%d runs) to %s\n", n, len(collectedTraces), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}

func run(fig int, opt experiments.Options, metric string) error {
	names := trace.SingleCoreNames()
	switch fig {
	case 3:
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		return experiments.WriteTable3(os.Stdout, rows)
	case 8:
		return experiments.WriteFig8(os.Stdout, experiments.Fig8())
	case 10:
		for _, tr := range experiments.Fig10(50, 2.5) {
			fmt.Printf("Fig 10 transient, %dx MCR (t ns, Vbit, Vcell):\n", tr.K)
			for i := range tr.T {
				fmt.Printf("  %6.2f  %6.4f  %6.4f\n", tr.T[i], tr.VBit[i], tr.VCell[i])
			}
		}
		return nil
	case 11:
		s, err := experiments.Fig11(opt, names)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case 12:
		s, err := experiments.Fig12(opt, names)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case 13:
		s, err := experiments.Fig13(opt, names)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case 14:
		s, err := experiments.Fig14(opt)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case 15:
		s, err := experiments.Fig15(opt)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case 16:
		s, err := experiments.Fig16(opt)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case 17:
		for _, mc := range []bool{false, true} {
			s, err := experiments.Fig17(opt, mc, names)
			if err != nil {
				return err
			}
			collectTraces(s)
			if err := experiments.WriteSweep(os.Stdout, s, "exec"); err != nil {
				return err
			}
		}
		return nil
	case 18:
		for _, mc := range []bool{false, true} {
			s, err := experiments.Fig18(opt, mc, names)
			if err != nil {
				return err
			}
			collectTraces(s)
			if err := experiments.WriteSweep(os.Stdout, s, "edp"); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown figure %d", fig)
}

// runExtra runs one beyond-the-paper study.
func runExtra(name string, opt experiments.Options, metric string, seeds int) error {
	names := trace.SingleCoreNames()
	switch name {
	case "combined":
		s, err := experiments.CombinedLayout(opt, names)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case "tldram":
		s, err := experiments.TLDRAMComparison(opt, names)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case "shootout":
		r, err := experiments.Shootout(opt, names)
		if err != nil {
			return err
		}
		collectTraces(r.Sweep)
		return experiments.WriteShootout(os.Stdout, r)
	case "wiring", "scheduler", "rowpolicy":
		kind := map[string]experiments.AblationKind{
			"wiring":    experiments.AblationWiring,
			"scheduler": experiments.AblationScheduler,
			"rowpolicy": experiments.AblationRowPolicy,
		}[name]
		s, err := experiments.Ablation(opt, kind, names)
		if err != nil {
			return err
		}
		return writeBoth(s, metric)
	case "resilience":
		rows, err := experiments.ResilienceStudy(opt, []string{"tigr", "stream", "comm2"}, nil)
		if len(rows) > 0 {
			if werr := experiments.WriteResilience(os.Stdout, rows); werr != nil {
				return werr
			}
		}
		return err
	case "repeat":
		mode, err := mcr.NewMode(4, 4, 1)
		if err != nil {
			return err
		}
		for _, w := range []string{"tigr", "comm2", "black"} {
			exec, readlat, edp, err := experiments.RepeatedComparison(opt, w, mode, seeds)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s mode [4/4x/100%%reg] exec %% : %v\n", w, exec)
			fmt.Printf("%-8s mode [4/4x/100%%reg] rdlat %%: %v\n", w, readlat)
			fmt.Printf("%-8s mode [4/4x/100%%reg] EDP %%  : %v\n", w, edp)
		}
		return nil
	}
	return fmt.Errorf("unknown extra study %q", name)
}

// writeBoth prints the requested metric, or exec+readlat tables when the
// default is selected (the paper's figures show both). It also folds the
// sweep's event traces into the -trace-out collector.
func writeBoth(s *experiments.Sweep, metric string) error {
	collectTraces(s)
	if metric != "exec" {
		return experiments.WriteSweep(os.Stdout, s, metric)
	}
	if err := experiments.WriteSweep(os.Stdout, s, "exec"); err != nil {
		return err
	}
	return experiments.WriteSweep(os.Stdout, s, "readlat")
}
