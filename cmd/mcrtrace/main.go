// Command mcrtrace dumps synthetic workload streams to the compact binary
// trace format and inspects existing trace files.
//
// Usage:
//
//	mcrtrace -dump -workload tigr -insts 1000000 -o tigr.trace
//	mcrtrace -info tigr.trace
//	mcrtrace -head 20 tigr.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "generate a workload and write a trace file")
		workload = flag.String("workload", "tigr", "Table 5 workload name for -dump")
		insts    = flag.Int64("insts", 1_000_000, "instruction budget for -dump")
		seed     = flag.Int64("seed", 1, "generator seed for -dump")
		baseRow  = flag.Int64("base", 0, "base row offset for -dump")
		out      = flag.String("o", "", "output path for -dump")
		info     = flag.Bool("info", false, "print summary statistics of a trace file")
		head     = flag.Int("head", 0, "print the first N records of a trace file")
	)
	flag.Parse()

	switch {
	case *dump:
		if *out == "" {
			fatal(fmt.Errorf("-dump needs -o PATH"))
		}
		w, err := trace.ByName(*workload)
		if err != nil {
			fatal(err)
		}
		g, err := trace.New(w, *seed, *insts, *baseRow)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		n, err := trace.WriteAll(f, g)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records (%d bytes, %.1f B/record) to %s\n",
			n, st.Size(), float64(st.Size())/float64(n), *out)

	case *info || *head > 0:
		path := flag.Arg(0)
		if path == "" {
			fatal(fmt.Errorf("pass a trace file path"))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		recs, err := trace.ReadRecords(f)
		if err != nil {
			fatal(err)
		}
		if *head > 0 {
			for i, r := range recs {
				if i >= *head {
					break
				}
				fmt.Printf("%8d gap=%-6d %-5v line=%d\n", i, r.Gap, r.Kind, r.Line)
			}
			return
		}
		var insts, reads, writes int64
		rows := map[int64]bool{}
		for _, r := range recs {
			insts += int64(r.Gap)
			if r.Line < 0 {
				continue
			}
			insts++
			rows[r.Line/trace.LinesPerRow] = true
			if r.Kind == 0 {
				reads++
			} else {
				writes++
			}
		}
		fmt.Printf("records      : %d\n", len(recs))
		fmt.Printf("instructions : %d\n", insts)
		fmt.Printf("reads/writes : %d / %d (%.1f%% reads)\n",
			reads, writes, float64(reads)/float64(reads+writes)*100)
		fmt.Printf("MPKI         : %.1f\n", float64(reads+writes)/float64(insts)*1000)
		fmt.Printf("distinct rows: %d\n", len(rows))

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcrtrace:", err)
	os.Exit(1)
}
