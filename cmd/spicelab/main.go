// Command spicelab drives the circuit-level ("SPICE-lite") model: it prints
// the Fig 10 activation transients, the Table 3 timing derivation, and —
// with -fit — re-runs the calibration search that produced the default
// parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/experiments"
)

func main() {
	var (
		fig10   = flag.Bool("fig10", false, "print the Fig 10 transients")
		table3  = flag.Bool("table3", false, "print the Table 3 derivation")
		fit     = flag.Bool("fit", false, "re-run the calibration search (slow)")
		horizon = flag.Float64("horizon", 50, "transient horizon in ns")
		step    = flag.Float64("step", 1.0, "transient sample step in ns")
	)
	flag.Parse()
	if !*fig10 && !*table3 && !*fit {
		*fig10, *table3 = true, true
	}

	if *table3 {
		rows, err := experiments.Table3()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spicelab:", err)
			os.Exit(1)
		}
		if err := experiments.WriteTable3(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "spicelab:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *fig10 {
		p := circuit.Default()
		fmt.Printf("Fig 10: activation transients (VDD=%.2f V, accessible=%.3f V)\n", p.VDD, p.VAccessFrac*p.VDD)
		plotTrs := experiments.Fig10(*horizon, *horizon/72)
		fmt.Println("\n(a) bitline voltage (glyph = K):")
		fmt.Print(circuit.PlotTransients(plotTrs, func(t *circuit.Transient) []float64 { return t.VBit }, 16, p.VDD))
		fmt.Println("\n(b) cell voltage (glyph = K):")
		fmt.Print(circuit.PlotTransients(plotTrs, func(t *circuit.Transient) []float64 { return t.VCell }, 16, p.VDD))
		fmt.Println()
		trs := experiments.Fig10(*horizon, *step)
		fmt.Printf("%8s", "t(ns)")
		for _, tr := range trs {
			fmt.Printf("  %7s %7s", fmt.Sprintf("Vb(%dx)", tr.K), fmt.Sprintf("Vc(%dx)", tr.K))
		}
		fmt.Println()
		for i := range trs[0].T {
			fmt.Printf("%8.2f", trs[0].T[i])
			for _, tr := range trs {
				fmt.Printf("  %7.4f %7.4f", tr.VBit[i], tr.VCell[i])
			}
			fmt.Println()
		}
		fmt.Println()
		for _, k := range []int{1, 2, 4} {
			fmt.Printf("charge-sharing dV (%dx): %.4f V\n", k, p.ChargeSharingDeltaV(k))
		}
	}

	if *fit {
		fmt.Println("re-running calibration (coordinate descent on Table 3 targets)...")
		p, res := circuit.Fit(circuit.Default())
		fmt.Printf("residual (max relative deviation): %.4f\n", res)
		fmt.Printf("parameters: %+v\n", p)
	}
}
