package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mcr"
	"repro/internal/mcr/mcrtest"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

func TestParseModeValid(t *testing.T) {
	if m, err := parseMode(1, 0, 1.0); err != nil || m.Enabled() {
		t.Fatalf("k=1 must disable MCR: %v %v", m, err)
	}
	m, err := parseMode(4, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m != mcrtest.Mode(4, 4, 0.5) {
		t.Fatalf("m must default to k, got %v", m)
	}
	if _, err := parseMode(2, 1, 0.25); err != nil {
		t.Fatalf("2/1x rejected: %v", err)
	}
}

func TestParseModeInvalid(t *testing.T) {
	cases := []struct {
		k, m   int
		region float64
		want   string // substring the error must carry
	}{
		{3, 0, 1.0, "valid: 1 = off, 2, 4"},
		{8, 0, 1.0, "valid: 1 = off, 2, 4"},
		{1, 2, 1.0, "-k 1 disables MCR"},
		{4, 3, 1.0, "valid -m"},
		{4, 8, 1.0, "valid -m"},
		{4, 4, 0.3, "valid -region"},
	}
	for _, c := range cases {
		_, err := parseMode(c.k, c.m, c.region)
		if err == nil {
			t.Errorf("k=%d m=%d region=%g accepted", c.k, c.m, c.region)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("k=%d m=%d region=%g: error %q must contain %q", c.k, c.m, c.region, err, c.want)
		}
	}
}

func TestParseWiring(t *testing.T) {
	if w, err := parseWiring("n1k"); err != nil || w != mcr.KtoN1K {
		t.Fatalf("n1k: %v %v", w, err)
	}
	if w, err := parseWiring("ktok"); err != nil || w != mcr.KtoK {
		t.Fatalf("ktok: %v %v", w, err)
	}
	_, err := parseWiring("diagonal")
	if err == nil {
		t.Fatal("bad wiring accepted")
	}
	if !strings.Contains(err.Error(), "n1k") || !strings.Contains(err.Error(), "ktok") {
		t.Errorf("error must list the valid wirings: %v", err)
	}
}

func TestValidateCheckpointFlags(t *testing.T) {
	// No checkpoint flags: no policy.
	if ck, err := validateCheckpointFlags("", "", 0, false); err != nil || ck != nil {
		t.Fatalf("no flags: %v %v", ck, err)
	}
	// -checkpoint with its interval: lenient resume.
	ck, err := validateCheckpointFlags("run.ckpt", "", 4096, false)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Path != "run.ckpt" || ck.EveryNCycles != 4096 || !ck.Resume || ck.Strict {
		t.Fatalf("-checkpoint policy = %+v", ck)
	}
	// -restore alone: strict resume, no further writes.
	ck, err = validateCheckpointFlags("", "run.ckpt", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Path != "run.ckpt" || ck.EveryNCycles != 0 || !ck.Resume || !ck.Strict {
		t.Fatalf("-restore policy = %+v", ck)
	}

	// Contradictory combinations, each with a message naming the cure.
	cases := []struct {
		checkpoint, restore string
		every               int64
		compare             bool
		want                string // substring the error must carry
	}{
		{"run.ckpt", "", 0, false, "-checkpoint-every"},
		{"", "", 4096, false, "-checkpoint-every needs"},
		{"a.ckpt", "b.ckpt", 4096, false, "conflict"},
		{"run.ckpt", "", -1, false, "positive"},
		{"run.ckpt", "", 4096, true, "-compare"},
		{"", "run.ckpt", 0, true, "-compare"},
	}
	for _, c := range cases {
		_, err := validateCheckpointFlags(c.checkpoint, c.restore, c.every, c.compare)
		if err == nil {
			t.Errorf("checkpoint=%q restore=%q every=%d compare=%v accepted", c.checkpoint, c.restore, c.every, c.compare)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("checkpoint=%q restore=%q every=%d: error %q must contain %q", c.checkpoint, c.restore, c.every, err, c.want)
		}
	}
}

// TestValidateRestoreConfig: -restore with mismatched configuration flags
// (here a different -fault-seed) is refused before the run starts.
func TestValidateRestoreConfig(t *testing.T) {
	cfg := sim.DefaultConfig("stream")
	cfg.InstsPerCore = 5_000
	cfg.Fault = &fault.Config{Seed: 7, WeakFraction: 0.05, TailMinFrac: 0.0005, TailMaxFrac: 0.005}
	s, err := sim.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := validateRestoreConfig(path, cfg); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	other := cfg
	fc := *cfg.Fault
	fc.Seed = 8 // the -fault-seed mismatch
	other.Fault = &fc
	err = validateRestoreConfig(path, other)
	if !errors.Is(err, snapshot.ErrConfigMismatch) {
		t.Fatalf("want snapshot.ErrConfigMismatch, got %v", err)
	}
	if !strings.Contains(err.Error(), "-fault-seed") {
		t.Errorf("error must point at the flag family: %v", err)
	}
	if err := validateRestoreConfig(filepath.Join(t.TempDir(), "absent.ckpt"), cfg); err == nil {
		t.Error("missing snapshot accepted")
	}
}

func TestValidateWorkloads(t *testing.T) {
	if err := validateWorkloads([]string{"tigr", "comm2"}); err != nil {
		t.Fatalf("catalogue workloads rejected: %v", err)
	}
	err := validateWorkloads([]string{"tigr", "nosuch"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "tigr") {
		t.Errorf("error must name the input and list the catalogue: %v", err)
	}
}
