package main

import (
	"strings"
	"testing"

	"repro/internal/mcr"
	"repro/internal/mcr/mcrtest"
)

func TestParseModeValid(t *testing.T) {
	if m, err := parseMode(1, 0, 1.0); err != nil || m.Enabled() {
		t.Fatalf("k=1 must disable MCR: %v %v", m, err)
	}
	m, err := parseMode(4, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m != mcrtest.Mode(4, 4, 0.5) {
		t.Fatalf("m must default to k, got %v", m)
	}
	if _, err := parseMode(2, 1, 0.25); err != nil {
		t.Fatalf("2/1x rejected: %v", err)
	}
}

func TestParseModeInvalid(t *testing.T) {
	cases := []struct {
		k, m   int
		region float64
		want   string // substring the error must carry
	}{
		{3, 0, 1.0, "valid: 1 = off, 2, 4"},
		{8, 0, 1.0, "valid: 1 = off, 2, 4"},
		{1, 2, 1.0, "-k 1 disables MCR"},
		{4, 3, 1.0, "valid -m"},
		{4, 8, 1.0, "valid -m"},
		{4, 4, 0.3, "valid -region"},
	}
	for _, c := range cases {
		_, err := parseMode(c.k, c.m, c.region)
		if err == nil {
			t.Errorf("k=%d m=%d region=%g accepted", c.k, c.m, c.region)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("k=%d m=%d region=%g: error %q must contain %q", c.k, c.m, c.region, err, c.want)
		}
	}
}

func TestParseWiring(t *testing.T) {
	if w, err := parseWiring("n1k"); err != nil || w != mcr.KtoN1K {
		t.Fatalf("n1k: %v %v", w, err)
	}
	if w, err := parseWiring("ktok"); err != nil || w != mcr.KtoK {
		t.Fatalf("ktok: %v %v", w, err)
	}
	_, err := parseWiring("diagonal")
	if err == nil {
		t.Fatal("bad wiring accepted")
	}
	if !strings.Contains(err.Error(), "n1k") || !strings.Contains(err.Error(), "ktok") {
		t.Errorf("error must list the valid wirings: %v", err)
	}
}

func TestValidateWorkloads(t *testing.T) {
	if err := validateWorkloads([]string{"tigr", "comm2"}); err != nil {
		t.Fatalf("catalogue workloads rejected: %v", err)
	}
	err := validateWorkloads([]string{"tigr", "nosuch"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "tigr") {
		t.Errorf("error must name the input and list the catalogue: %v", err)
	}
}
