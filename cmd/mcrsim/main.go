// Command mcrsim runs one MCR-DRAM system simulation from flags and prints
// the metrics.
//
// Usage:
//
//	mcrsim -workload tigr -k 4 -m 4 -region 1.0 -insts 2000000
//	mcrsim -workload comm2,leslie,black,mummer -multicore -k 2 -m 2 -region 0.5 -alloc 0.1
//	mcrsim -workload tigr -k 4 -compare          # baseline vs MCR, pooled
//	mcrsim -workload tigr -k 4 -checkpoint run.ckpt -checkpoint-every 1000000
//	mcrsim -workload tigr -k 4 -restore run.ckpt # strict resume after a crash
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/mcr"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runplan"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// startPprof serves net/http/pprof on addr when non-empty (host profiling
// of the simulator itself, unrelated to simulated-cycle observability).
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "mcrsim: pprof:", err)
		}
	}()
}

// writeChromeTrace exports one or more labelled tracers as a single
// Chrome trace_event JSON file (load in Perfetto / chrome://tracing).
func writeChromeTrace(path string, groups []obs.TraceGroup) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeGroups(f, groups); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseMode validates the -k/-m/-region flags with explicit choice lists
// instead of silent fallthrough.
func parseMode(k, m int, region float64) (mcr.Mode, error) {
	switch k {
	case 1:
		if m != 0 && m != 1 {
			return mcr.Mode{}, fmt.Errorf("-m %d needs an MCR mode; -k 1 disables MCR (valid -k: 1, 2, 4)", m)
		}
		return mcr.Off(), nil
	case 2, 4:
	default:
		return mcr.Mode{}, fmt.Errorf("invalid -k %d (valid: 1 = off, 2, 4)", k)
	}
	if m == 0 {
		m = k
	}
	mode, err := mcr.NewMode(k, m, region)
	if err != nil {
		return mcr.Mode{}, fmt.Errorf("%w (valid -m: powers of two with 1 <= m <= k; valid -region: 0.25, 0.5, 0.75, 1)", err)
	}
	return mode, nil
}

// parseWiring validates the -wiring flag.
func parseWiring(s string) (mcr.Wiring, error) {
	switch s {
	case "n1k":
		return mcr.KtoN1K, nil
	case "ktok":
		return mcr.KtoK, nil
	}
	return 0, fmt.Errorf("unknown wiring %q (valid: n1k, ktok)", s)
}

// validateCheckpointFlags resolves the -checkpoint/-checkpoint-every/
// -restore flag triple into a checkpoint policy, rejecting contradictory
// combinations. -checkpoint starts (or leniently resumes) a periodically
// snapshotted run; -restore strictly resumes from an existing snapshot,
// continuing to write to it only when -checkpoint-every is also given.
func validateCheckpointFlags(checkpoint, restore string, every int64, compare bool) (*sim.CheckpointConfig, error) {
	if every < 0 {
		return nil, fmt.Errorf("-checkpoint-every must be positive, got %d", every)
	}
	if compare && (checkpoint != "" || restore != "") {
		return nil, errors.New("-compare runs two simulations and cannot share one snapshot file; drop -checkpoint/-restore (sweeps checkpoint via reproduce -checkpoint-dir)")
	}
	switch {
	case checkpoint != "" && restore != "":
		return nil, errors.New("-checkpoint and -restore conflict: -checkpoint starts (or leniently resumes) a snapshotted run, -restore strictly resumes an existing one")
	case checkpoint != "":
		if every == 0 {
			return nil, errors.New("-checkpoint needs -checkpoint-every (snapshot interval in memory cycles)")
		}
		return &sim.CheckpointConfig{Path: checkpoint, EveryNCycles: every, Resume: true}, nil
	case restore != "":
		return &sim.CheckpointConfig{Path: restore, EveryNCycles: every, Resume: true, Strict: true}, nil
	case every != 0:
		return nil, errors.New("-checkpoint-every needs -checkpoint or -restore")
	}
	return nil, nil
}

// validateRestoreConfig checks — before the run starts — that the
// snapshot at path was produced by exactly this configuration, so a flag
// mismatch (a different -fault-seed, -seed, -insts, -workload or mode)
// is a usage error up front rather than a mid-startup failure.
func validateRestoreConfig(path string, cfg sim.Config) error {
	st, err := snapshot.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-restore %s: %w", path, err)
	}
	want, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	if !bytes.Equal(st.ConfigJSON, want) {
		return fmt.Errorf("-restore %s: %w: the snapshot was taken under a different configuration (check -fault-seed, -seed, -insts, -workload and the mode flags)\n  snapshot: %s\n  flags:    %s",
			path, snapshot.ErrConfigMismatch, st.ConfigJSON, want)
	}
	return nil
}

// validateWorkloads checks every name against the Table 5 catalogue and
// lists the catalogue on failure.
func validateWorkloads(names []string) error {
	var valid []string
	for _, w := range trace.Workloads() {
		valid = append(valid, w.Name)
	}
	for _, n := range names {
		if _, err := trace.ByName(n); err != nil {
			return fmt.Errorf("unknown workload %q (valid: %s)", n, strings.Join(valid, ", "))
		}
	}
	return nil
}

func main() {
	var (
		workloads = flag.String("workload", "tigr", "comma-separated Table 5 workload names, one per core")
		k         = flag.Int("k", 1, "rows per MCR (1 disables MCR, 2 or 4)")
		m         = flag.Int("m", 0, "refreshes kept per MCR per 64 ms window (default K)")
		region    = flag.Float64("region", 1.0, "MCR region fraction L (0.25, 0.5, 0.75, 1)")
		allocFrac = flag.Float64("alloc", 0, "profile-based page allocation ratio (0 disables)")
		insts     = flag.Int64("insts", 2_000_000, "instructions per core")
		seed      = flag.Int64("seed", 1, "simulation seed")
		multicore = flag.Bool("multicore", false, "use the 16 GB quad-core geometry")
		noEA      = flag.Bool("no-early-access", false, "disable Early-Access")
		noEP      = flag.Bool("no-early-precharge", false, "disable Early-Precharge")
		noFR      = flag.Bool("no-fast-refresh", false, "disable Fast-Refresh")
		noRS      = flag.Bool("no-refresh-skipping", false, "disable Refresh-Skipping")
		wiring    = flag.String("wiring", "n1k", `refresh counter wiring: "n1k" (paper) or "ktok" (ablation)`)
		list      = flag.Bool("list", false, "list the workload catalogue and exit")
		combined  = flag.Bool("combined", false, "use a combined 4x+2x layout (25% each) instead of -k/-m/-region")
		alloc4    = flag.Float64("alloc4", 0.05, "combined layout: hottest fraction into the 4x band")
		alloc2    = flag.Float64("alloc2", 0.15, "combined layout: next fraction into the 2x band")
		check     = flag.Bool("check", false, "attach the retention-integrity checker")
		faultFrac = flag.Float64("fault-weak", 0, "inject a seeded weak-cell population at this fraction (0 disables)")
		faultSeed = flag.Int64("fault-seed", 0, "fault-injection seed (0 = the run seed)")
		degrade   = flag.Int("degrade-after", 0, "ECC events per rung before downgrading the MCR mode (0 = no degradation)")
		quar      = flag.Bool("quarantine", false, "demote failing clone gangs to 1x timing on their first ECC event")
		compare   = flag.Bool("compare", false, "also run the MCR-off baseline (pooled) and print the comparison")
		jobs      = flag.Int("jobs", 0, "-compare simulations in flight (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print per-simulation progress with throughput stats")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		histogram = flag.Bool("hist", false, "print the read-latency histogram")
		full      = flag.Bool("report", false, "print the full run report instead of the summary")
		ckptPath  = flag.String("checkpoint", "", "write crash-safe periodic snapshots of the full simulator state to this file, resuming from it when present (needs -checkpoint-every)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "snapshot interval in memory cycles")
		restore   = flag.String("restore", "", "resume strictly from this snapshot file; it must exist and match the configuration flags")
		metrics   = flag.Bool("metrics", false, "attach the cycle-domain observability registry (stall attribution, per-bank commands)")
		traceOut  = flag.String("trace-out", "", "write the run's command/policy events as Chrome trace_event JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060")
	)
	flag.Parse()
	startPprof(*pprofAddr)

	if *list {
		for _, w := range trace.Workloads() {
			fmt.Printf("%-11s %-10s MPKI=%-4.0f rowhit=%.2f reads=%.0f%%\n", w.Name, w.Suite, w.MPKI, w.RowHit, w.ReadFrac*100)
		}
		return
	}

	names := strings.Split(*workloads, ",")
	if err := validateWorkloads(names); err != nil {
		fatal(err)
	}
	mode, err := parseMode(*k, *m, *region)
	if err != nil {
		fatal(err)
	}
	if *insts <= 0 {
		fatal(fmt.Errorf("-insts must be positive, got %d", *insts))
	}
	ck, err := validateCheckpointFlags(*ckptPath, *restore, *ckptEvery, *compare)
	if err != nil {
		usageFatal(err)
	}

	cfg := sim.DefaultConfig(names[0])
	cfg.Workloads = names
	cfg.InstsPerCore = *insts
	cfg.Seed = *seed
	cfg.AllocRatio = *allocFrac
	cfg.DRAM = dram.DefaultConfig(mode)
	if *combined {
		layout, err := mcr.NewLayout(
			mcr.Band{K: 4, M: 4, Region: 0.25},
			mcr.Band{K: 2, M: 2, Region: 0.25},
		)
		if err != nil {
			fatal(err)
		}
		cfg.DRAM.Mode = mcr.Off()
		cfg.DRAM.Layout = layout
		cfg.AllocRatio = 0
		cfg.AllocRatio4, cfg.AllocRatio2 = *alloc4, *alloc2
	}
	if *check {
		ic := integrity.DefaultConfig()
		cfg.Integrity = &ic
	}
	if *faultFrac > 0 {
		cfg.Fault = &fault.Config{
			Seed:         *faultSeed,
			WeakFraction: *faultFrac,
			// Compressed retention tails so weak rows observably fail
			// within CLI-sized runs (see internal/fault).
			TailMinFrac: 0.0005,
			TailMaxFrac: 0.005,
		}
	}
	if *degrade > 0 || *quar {
		cfg.Resilience = &sim.ResilienceConfig{DowngradeAfter: *degrade, Quarantine: *quar}
	}
	if *multicore {
		cfg.DRAM.Geom = core.MultiCoreGeometry()
	}
	cfg.DRAM.Mech = dram.Mechanisms{
		EarlyAccess:     !*noEA,
		EarlyPrecharge:  !*noEP,
		FastRefresh:     !*noFR,
		RefreshSkipping: !*noRS,
	}
	cfg.DRAM.Wiring, err = parseWiring(*wiring)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *compare {
		if err := runCompare(ctx, cfg, mode, *jobs, *verbose, *metrics, *traceOut); err != nil {
			fatal(err)
		}
		return
	}

	if ck != nil {
		cfg.Checkpoint = ck
		if ck.Strict {
			if err := validateRestoreConfig(ck.Path, cfg); err != nil {
				usageFatal(err)
			}
		}
	}
	if *metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		cfg.Trace = tracer
	}
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		label := mode.String() + " " + strings.Join(cfg.Workloads, "+")
		if err := writeChromeTrace(*traceOut, []obs.TraceGroup{{Label: label, Events: tracer.Events()}}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mcrsim: wrote %d trace events to %s (%d dropped by the ring)\n",
			tracer.Len(), *traceOut, tracer.Dropped())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	if *full {
		if err := report.Write(os.Stdout, cfg, res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("workloads         : %s\n", strings.Join(res.Workloads, ", "))
	fmt.Printf("mode              : %s\n", mode)
	fmt.Printf("exec time         : %d CPU cycles (%.3f ms)\n", res.ExecCPUCycles, float64(res.ExecCPUCycles)/float64(core.CPUClockMHz)/1000)
	fmt.Printf("IPC               : %.3f\n", res.IPC)
	fmt.Printf("reads             : %d, avg latency %.1f ns\n", res.ReadCount, res.AvgReadLatencyNS)
	fmt.Printf("row hits/misses   : %d/%d (conflicts %d)\n", res.Ctrl.RowHits, res.Ctrl.RowMisses, res.Ctrl.RowConflicts)
	fmt.Printf("MCR request frac  : %.1f%%\n", res.MCRRequestFraction*100)
	fmt.Printf("activates         : %d (%d MCR)\n", res.Dev.Activates, res.Dev.MCRActivates)
	fmt.Printf("refreshes         : %d (%d MCR, %d skipped)\n", res.Dev.Refreshes, res.Dev.MCRRefreshes, res.Dev.SkippedRefreshes)
	fmt.Printf("energy            : %.1f µJ (act %.1f, rd/wr %.1f, ref %.1f, bg %.1f)\n",
		res.Energy.TotalNJ()/1e3, res.Energy.ActivateNJ/1e3, res.Energy.ReadWriteNJ/1e3, res.Energy.RefreshNJ/1e3, res.Energy.BackgroundNJ/1e3)
	fmt.Printf("EDP               : %.3f nJ·s\n", res.EDPNJs)
	fmt.Printf("sim throughput    : %.2f Mcyc/s, %.2f Minst/s (%.0f ms wall)\n",
		float64(res.MemCycles)/res.Wall.Seconds()/1e6,
		float64(res.RetiredInsts)/res.Wall.Seconds()/1e6,
		float64(res.Wall.Microseconds())/1e3)
	if rs := res.Resilience; rs != nil {
		fmt.Printf("resilience        : %d ECC events, %d quarantined rows, %d downgrades (%s -> %s)\n",
			rs.ECCEvents, rs.QuarantinedRows, rs.Downgrades, rs.InitialMode, rs.FinalMode)
	}
	if o := res.Obs; o != nil {
		t := o.Stall.Total()
		pctOf := func(c obs.StallComponent) float64 {
			if t == 0 {
				return 0
			}
			return float64(o.Stall[c]) / float64(t) * 100
		}
		fmt.Printf("stall attribution : queue %.1f%%, tRAS %.1f%%, tRFC %.1f%%, tRP %.1f%%, tRCD %.1f%%, bus %.1f%%\n",
			pctOf(obs.StallQueue), pctOf(obs.StallRASTail), pctOf(obs.StallRFC),
			pctOf(obs.StallRP), pctOf(obs.StallRCD), pctOf(obs.StallBus))
		fmt.Printf("commands          : ACT %d, PRE %d, RD %d, WR %d, REF %d (debt peak %d)\n",
			o.Commands["ACT"], o.Commands["PRE"], o.Commands["RD"], o.Commands["WR"], o.Commands["REF"], o.RefreshDebtPeak)
	}
	if *check {
		if len(res.Integrity) == 0 {
			fmt.Println("integrity         : OK (no retention violations)")
		} else {
			fmt.Printf("integrity         : %d violations, first: %v\n", len(res.Integrity), res.Integrity[0])
		}
	}
	if *histogram {
		fmt.Printf("read latency p50/p95/p99: %.0f/%.0f/%.0f ns\n",
			res.Latency.Percentile(50), res.Latency.Percentile(95), res.Latency.Percentile(99))
		fmt.Print(res.Latency)
	}
}

// runCompare runs the configured variant and its MCR-off baseline through
// the pooled executor and prints the comparison block.
func runCompare(ctx context.Context, cfg sim.Config, mode mcr.Mode, jobs int, verbose, metrics bool, traceOut string) error {
	plan := &runplan.Plan{Name: "mcrsim"}
	plan.AddPair(strings.Join(cfg.Workloads, "+"), mode.String(), cfg, experiments.BaselineOf(cfg))
	ex := runplan.Executor{Jobs: jobs, Metrics: metrics}
	if traceOut != "" {
		ex.TraceCap = obs.DefaultTraceCap
	}
	if verbose {
		if metrics {
			ex.Sink = runplan.ObsLineSink(os.Stderr)
		} else {
			ex.Sink = runplan.LineSink(os.Stderr)
		}
	}
	results, err := ex.Execute(ctx, plan)
	if err != nil {
		return err
	}
	r := results[0]
	if traceOut != "" {
		groups := []obs.TraceGroup{{Label: "baseline", Events: r.BaseTrace.Events()},
			{Label: mode.String(), Events: r.Trace.Events()}}
		if err := writeChromeTrace(traceOut, groups); err != nil {
			return err
		}
	}
	return report.Compare(os.Stdout, mode.String(), r.Base, r.Run)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcrsim:", err)
	os.Exit(1)
}

// usageFatal reports a flag-combination error the way flag parsing does:
// the message, the usage text, exit code 2.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "mcrsim:", err)
	flag.Usage()
	os.Exit(2)
}
