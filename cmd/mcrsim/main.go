// Command mcrsim runs one MCR-DRAM system simulation from flags and prints
// the metrics.
//
// Usage:
//
//	mcrsim -workload tigr -k 4 -m 4 -region 1.0 -insts 2000000
//	mcrsim -workload comm2,leslie,black,mummer -multicore -k 2 -m 2 -region 0.5 -alloc 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/integrity"
	"repro/internal/mcr"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		workloads = flag.String("workload", "tigr", "comma-separated Table 5 workload names, one per core")
		k         = flag.Int("k", 1, "rows per MCR (1 disables MCR, 2 or 4)")
		m         = flag.Int("m", 0, "refreshes kept per MCR per 64 ms window (default K)")
		region    = flag.Float64("region", 1.0, "MCR region fraction L (0.25, 0.5, 0.75, 1)")
		allocFrac = flag.Float64("alloc", 0, "profile-based page allocation ratio (0 disables)")
		insts     = flag.Int64("insts", 2_000_000, "instructions per core")
		seed      = flag.Int64("seed", 1, "simulation seed")
		multicore = flag.Bool("multicore", false, "use the 16 GB quad-core geometry")
		noEA      = flag.Bool("no-early-access", false, "disable Early-Access")
		noEP      = flag.Bool("no-early-precharge", false, "disable Early-Precharge")
		noFR      = flag.Bool("no-fast-refresh", false, "disable Fast-Refresh")
		noRS      = flag.Bool("no-refresh-skipping", false, "disable Refresh-Skipping")
		wiring    = flag.String("wiring", "n1k", `refresh counter wiring: "n1k" (paper) or "ktok" (ablation)`)
		list      = flag.Bool("list", false, "list the workload catalogue and exit")
		combined  = flag.Bool("combined", false, "use a combined 4x+2x layout (25% each) instead of -k/-m/-region")
		alloc4    = flag.Float64("alloc4", 0.05, "combined layout: hottest fraction into the 4x band")
		alloc2    = flag.Float64("alloc2", 0.15, "combined layout: next fraction into the 2x band")
		check     = flag.Bool("check", false, "attach the retention-integrity checker")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		histogram = flag.Bool("hist", false, "print the read-latency histogram")
		full      = flag.Bool("report", false, "print the full run report instead of the summary")
	)
	flag.Parse()

	if *list {
		for _, w := range trace.Workloads() {
			fmt.Printf("%-11s %-10s MPKI=%-4.0f rowhit=%.2f reads=%.0f%%\n", w.Name, w.Suite, w.MPKI, w.RowHit, w.ReadFrac*100)
		}
		return
	}

	names := strings.Split(*workloads, ",")
	mode := mcr.Off()
	if *k > 1 {
		mm := *m
		if mm == 0 {
			mm = *k
		}
		var err error
		mode, err = mcr.NewMode(*k, mm, *region)
		if err != nil {
			fatal(err)
		}
	}

	cfg := sim.DefaultConfig(names[0])
	cfg.Workloads = names
	cfg.InstsPerCore = *insts
	cfg.Seed = *seed
	cfg.AllocRatio = *allocFrac
	cfg.DRAM = dram.DefaultConfig(mode)
	if *combined {
		layout, err := mcr.NewLayout(
			mcr.Band{K: 4, M: 4, Region: 0.25},
			mcr.Band{K: 2, M: 2, Region: 0.25},
		)
		if err != nil {
			fatal(err)
		}
		cfg.DRAM.Mode = mcr.Off()
		cfg.DRAM.Layout = layout
		cfg.AllocRatio = 0
		cfg.AllocRatio4, cfg.AllocRatio2 = *alloc4, *alloc2
	}
	if *check {
		ic := integrity.DefaultConfig()
		cfg.Integrity = &ic
	}
	if *multicore {
		cfg.DRAM.Geom = core.MultiCoreGeometry()
	}
	cfg.DRAM.Mech = dram.Mechanisms{
		EarlyAccess:     !*noEA,
		EarlyPrecharge:  !*noEP,
		FastRefresh:     !*noFR,
		RefreshSkipping: !*noRS,
	}
	switch *wiring {
	case "n1k":
		cfg.DRAM.Wiring = mcr.KtoN1K
	case "ktok":
		cfg.DRAM.Wiring = mcr.KtoK
	default:
		fatal(fmt.Errorf("unknown wiring %q", *wiring))
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	if *full {
		if err := report.Write(os.Stdout, cfg, res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("workloads         : %s\n", strings.Join(res.Workloads, ", "))
	fmt.Printf("mode              : %s\n", mode)
	fmt.Printf("exec time         : %d CPU cycles (%.3f ms)\n", res.ExecCPUCycles, float64(res.ExecCPUCycles)/float64(core.CPUClockMHz)/1000)
	fmt.Printf("IPC               : %.3f\n", res.IPC)
	fmt.Printf("reads             : %d, avg latency %.1f ns\n", res.ReadCount, res.AvgReadLatencyNS)
	fmt.Printf("row hits/misses   : %d/%d (conflicts %d)\n", res.Ctrl.RowHits, res.Ctrl.RowMisses, res.Ctrl.RowConflicts)
	fmt.Printf("MCR request frac  : %.1f%%\n", res.MCRRequestFraction*100)
	fmt.Printf("activates         : %d (%d MCR)\n", res.Dev.Activates, res.Dev.MCRActivates)
	fmt.Printf("refreshes         : %d (%d MCR, %d skipped)\n", res.Dev.Refreshes, res.Dev.MCRRefreshes, res.Dev.SkippedRefreshes)
	fmt.Printf("energy            : %.1f µJ (act %.1f, rd/wr %.1f, ref %.1f, bg %.1f)\n",
		res.Energy.TotalNJ()/1e3, res.Energy.ActivateNJ/1e3, res.Energy.ReadWriteNJ/1e3, res.Energy.RefreshNJ/1e3, res.Energy.BackgroundNJ/1e3)
	fmt.Printf("EDP               : %.3f nJ·s\n", res.EDPNJs)
	if *check {
		if len(res.Integrity) == 0 {
			fmt.Println("integrity         : OK (no retention violations)")
		} else {
			fmt.Printf("integrity         : %d violations, first: %v\n", len(res.Integrity), res.Integrity[0])
		}
	}
	if *histogram {
		fmt.Printf("read latency p50/p95/p99: %.0f/%.0f/%.0f ns\n",
			res.Latency.Percentile(50), res.Latency.Percentile(95), res.Latency.Percentile(99))
		fmt.Print(res.Latency)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcrsim:", err)
	os.Exit(1)
}
