package mcrdram_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	mcrdram "repro"
)

func TestWithIntegrityOption(t *testing.T) {
	mode, _ := mcrdram.NewMode(4, 4, 1)
	cfg := mcrdram.SingleCore("stream", mode)
	cfg.InstsPerCore = 60_000
	res, err := mcrdram.Run(context.Background(), cfg, mcrdram.WithIntegrity())
	if err != nil {
		t.Fatal(err)
	}
	if res.Integrity == nil {
		t.Fatal("checker was attached; report must be non-nil")
	}
	if len(res.Integrity) != 0 {
		t.Fatalf("schedule must be retention-safe: %v", res.Integrity[0])
	}
}

func TestGovernorFacade(t *testing.T) {
	g, err := mcrdram.NewGovernor(mcrdram.GovernorDefaults(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mode().K != 4 {
		t.Fatal("governor must start at 4x")
	}
	if g.Evaluate(0.99).String() != "relax" {
		t.Fatal("pressure must trigger a relax")
	}
}

func TestTLDRAMFacade(t *testing.T) {
	cfg := mcrdram.TLDRAMLike("tigr", mcrdram.TLDRAMDefaults())
	cfg.InstsPerCore = 60_000
	res, err := mcrdram.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := mcrdram.SingleCore("tigr", mcrdram.ModeOff())
	base.InstsPerCore = 60_000
	bres, err := mcrdram.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecCPUCycles >= bres.ExecCPUCycles {
		t.Fatalf("TL-DRAM-like (%d) must beat the baseline (%d)", res.ExecCPUCycles, bres.ExecCPUCycles)
	}
}

func TestWriteReportFacade(t *testing.T) {
	mode, _ := mcrdram.NewMode(2, 2, 1)
	cfg := mcrdram.SingleCore("black", mode)
	cfg.InstsPerCore = 40_000
	res, err := mcrdram.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mcrdram.WriteReport(&buf, cfg, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mode [2/2x/100%reg]") {
		t.Fatal("report missing the mode")
	}
	base := mcrdram.SingleCore("black", mcrdram.ModeOff())
	base.InstsPerCore = 40_000
	bres, err := mcrdram.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := mcrdram.WriteComparison(&buf, "2/2x", bres, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exec time reduction") {
		t.Fatal("comparison missing the headline")
	}
}

func TestCombinedLayoutFacade(t *testing.T) {
	layout, err := mcrdram.NewLayout(
		mcrdram.Band{K: 4, M: 4, Region: 0.25},
		mcrdram.Band{K: 2, M: 2, Region: 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mcrdram.CombinedLayout("comm2", layout, 0.05, 0.15)
	cfg.InstsPerCore = 60_000
	res, err := mcrdram.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MCRRequestFraction <= 0 {
		t.Fatal("combined layout must serve requests from MCRs")
	}
}

func TestNUATFacade(t *testing.T) {
	cfg := mcrdram.NUATLike("tigr", mcrdram.NUATDefaults())
	cfg.InstsPerCore = 60_000
	res, err := mcrdram.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadCount == 0 {
		t.Fatal("NUAT-like run produced no reads")
	}
	if res.MCRRequestFraction != 0 {
		t.Fatal("NUAT devices have no MCRs")
	}
}

func TestRunPlanFacade(t *testing.T) {
	mode, _ := mcrdram.NewMode(4, 4, 1)
	variant := mcrdram.SingleCore("tigr", mode)
	variant.InstsPerCore = 40_000

	plan := &mcrdram.RunPlan{Name: "facade"}
	plan.AddPair("tigr", mode.String(), variant, mcrdram.BaselineConfigOf(variant))

	var events []mcrdram.RunEvent
	ex := mcrdram.RunExecutor{Jobs: 2, Sink: mcrdram.ProgressFunc(func(e mcrdram.RunEvent) { events = append(events, e) })}
	results, err := ex.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Base == nil || results[0].Run == nil {
		t.Fatalf("plan results malformed: %+v", results)
	}
	if results[0].Run.ExecCPUCycles >= results[0].Base.ExecCPUCycles {
		t.Fatal("4/4x must beat the baseline on tigr")
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want baseline + variant", len(events))
	}
	var buf bytes.Buffer
	if err := mcrdram.WriteComparison(&buf, "facade", results[0].Base, results[0].Run); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "facade") {
		t.Fatal("comparison rendering incomplete")
	}
}

func TestRunContextCancel(t *testing.T) {
	mode, _ := mcrdram.NewMode(2, 2, 1)
	cfg := mcrdram.SingleCore("stream", mode)
	cfg.InstsPerCore = 50_000_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mcrdram.Run(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWithMechanismOption(t *testing.T) {
	mode, _ := mcrdram.NewMode(4, 4, 1)
	for _, name := range mcrdram.MechanismNames() {
		cfg := mcrdram.SingleCore("tigr", mode)
		cfg.InstsPerCore = 40_000
		res, err := mcrdram.Run(context.Background(), cfg, mcrdram.WithMechanism(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Mechanism != name {
			t.Errorf("WithMechanism(%q) ran backend %q", name, res.Mechanism)
		}
		if cfg.DRAM.TL != nil || cfg.DRAM.NUAT != nil || cfg.DRAM.CROW != nil || cfg.DRAM.CLR != nil {
			t.Errorf("%s: Run mutated the caller's Config", name)
		}
	}
	if _, err := mcrdram.Run(context.Background(), mcrdram.SingleCore("tigr", mode),
		mcrdram.WithMechanism("rowclone")); !errors.Is(err, mcrdram.ErrUnknownMechanism) {
		t.Fatalf("unknown mechanism: err = %v, want ErrUnknownMechanism", err)
	}
}
